// obs/ tests: the span tracer's ring-buffer overflow and concurrency
// contracts, the trace JSON's structure (parses, spans nest per thread),
// the metrics registry, the run manifest — and the plane's one hard
// promise, TraceParityTest: turning --trace on changes NOTHING about the
// computation. Objectives, op counts and (at I/O-deterministic schedules)
// page I/O are bit-identical to the untraced run.

#include <algorithm>
#include <cstdint>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <tuple>
#include <vector>

#include "core/factorml.h"
#include "exec/thread_pool.h"
#include "gtest/gtest.h"
#include "la/kernels.h"
#include "obs/manifest.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "test_util.h"

namespace factorml {
namespace {

using data::GenerateSynthetic;
using factorml::testing::TempDir;
using storage::BufferPool;

data::SyntheticSpec Spec(const std::string& dir) {
  data::SyntheticSpec spec;
  spec.dir = dir;
  spec.s_rows = 3000;
  spec.s_feats = 3;
  spec.attrs = {data::AttributeSpec{40, 5}};
  spec.clusters = 3;
  spec.with_target = false;
  spec.seed = 33;
  return spec;
}

gmm::GmmOptions GmmOpt(const std::string& temp_dir) {
  gmm::GmmOptions opt;
  opt.num_components = 3;
  opt.max_iters = 2;
  opt.batch_rows = 256;
  opt.morsel_rows = 200;  // ~15 chunks over 3000 rows
  opt.temp_dir = temp_dir;
  return opt;
}

// ------------------------------------------------------------ TraceBuffer

TEST(TraceBufferTest, OverflowDropsCountedAndBounded) {
  obs::TraceBuffer buf(4);
  obs::TraceEvent ev;
  ev.name = "x";
  ev.cat = obs::kCatExec;
  for (int i = 0; i < 10; ++i) {
    ev.ts_micros = static_cast<uint64_t>(i);
    const bool stored = buf.Emit(ev);
    EXPECT_EQ(stored, i < 4);
  }
  // Full ring: events beyond capacity are dropped and counted — never
  // overwritten (the first four survive untouched) and never waited on.
  EXPECT_EQ(buf.size(), 4u);
  EXPECT_EQ(buf.capacity(), 4u);
  EXPECT_EQ(buf.dropped(), 6u);
  for (size_t i = 0; i < buf.size(); ++i) {
    EXPECT_EQ(buf.event(i).ts_micros, i);
  }
  buf.Reset(8);
  EXPECT_EQ(buf.size(), 0u);
  EXPECT_EQ(buf.capacity(), 8u);
  EXPECT_EQ(buf.dropped(), 0u);
}

TEST(TraceBufferTest, ZeroCapacityClampsToOne) {
  obs::TraceBuffer buf(0);
  EXPECT_EQ(buf.capacity(), 1u);
}

// Pool workers emit concurrently into their own rings; the flush after
// Stop reads every buffer's published prefix. TSan-clean by construction
// (single-writer rings, release/acquire on size).
TEST(TracerTest, ConcurrentEmitFromPoolWorkers) {
  obs::Tracer::Instance().Start(64);
  const uint64_t before = obs::Tracer::Instance().TotalEvents();
  exec::ThreadPool::Instance().Run(4, [](int w) {
    for (int i = 0; i < 100; ++i) {
      obs::TraceSpan span(obs::kCatExec, "work");
      span.Arg("worker", w);
      obs::TraceInstant(obs::kCatExec, "tick", "i", i);
    }
  });
  obs::Tracer::Instance().Stop();
  const uint64_t emitted = obs::Tracer::Instance().TotalEvents() - before;
  // 4 workers x (100 spans + 100 instants), plus the pool's own
  // instrumentation of the region: one "region" span and 4 "task" spans.
  EXPECT_EQ(emitted + obs::Tracer::Instance().TotalDropped(), 805u);
  EXPECT_FALSE(obs::TraceEnabled());
}

TEST(TracerTest, DisabledEmitsNothing) {
  ASSERT_FALSE(obs::TraceEnabled());
  const uint64_t before = obs::Tracer::Instance().TotalEvents();
  {
    obs::TraceSpan span(obs::kCatExec, "ghost");
    span.Arg("a", 1);
    obs::TraceInstant(obs::kCatExec, "ghost_i");
  }
  EXPECT_EQ(obs::Tracer::Instance().TotalEvents(), before);
}

// ------------------------------------------------------- trace JSON shape

/// One parsed trace event (the fields the structural checks need).
struct ParsedEvent {
  std::string name;
  char ph = 'X';
  uint64_t ts = 0;
  uint64_t dur = 0;
  int tid = 0;
  std::string args;  // raw args object text, "" when absent
};

/// Extracts `"key": <number>` from one event line.
uint64_t NumField(const std::string& line, const std::string& key) {
  const std::string pat = "\"" + key + "\": ";
  const size_t p = line.find(pat);
  if (p == std::string::npos) return 0;
  return std::stoull(line.substr(p + pat.size()));
}

std::string StrField(const std::string& line, const std::string& key) {
  const std::string pat = "\"" + key + "\": \"";
  const size_t p = line.find(pat);
  if (p == std::string::npos) return "";
  const size_t b = p + pat.size();
  return line.substr(b, line.find('"', b) - b);
}

/// Parses the tracer's one-event-per-line JSON (WriteJson's fixed
/// format). Also sanity-checks the envelope.
std::vector<ParsedEvent> ParseTrace(const std::string& path,
                                    std::string* other_data) {
  std::ifstream in(path);
  EXPECT_TRUE(in.good()) << path;
  std::vector<ParsedEvent> events;
  std::string line;
  bool saw_open = false, saw_events = false, saw_close = false;
  while (std::getline(in, line)) {
    if (line == "{") saw_open = true;
    if (line.rfind("\"otherData\": ", 0) == 0 && other_data != nullptr) {
      *other_data = line.substr(13, line.size() - 14);  // strip key + ','
    }
    if (line.rfind("\"traceEvents\": [", 0) == 0) {
      saw_events = true;
      continue;
    }
    if (line == "}") saw_close = true;
    if (!saw_events || line.rfind("{\"name\": ", 0) != 0) continue;
    ParsedEvent ev;
    ev.name = StrField(line, "name");
    ev.ph = StrField(line, "ph")[0];
    ev.ts = NumField(line, "ts");
    ev.dur = NumField(line, "dur");
    ev.tid = static_cast<int>(NumField(line, "tid"));
    const size_t ap = line.find("\"args\": {");
    if (ap != std::string::npos) {
      ev.args = line.substr(ap + 8, line.find('}', ap) - ap - 7);
    }
    EXPECT_EQ(NumField(line, "pid"), 1u);
    events.push_back(ev);
  }
  EXPECT_TRUE(saw_open && saw_events && saw_close)
      << "trace envelope malformed: " << path;
  return events;
}

TEST(TracerTest, TrainedTraceParsesCoversSpansAndNests) {
  TempDir dir;
  BufferPool pool(512);
  auto rel = std::move(GenerateSynthetic(Spec(dir.str()), &pool)).value();
  gmm::GmmOptions opt = GmmOpt(dir.str());
  opt.threads = 4;
  opt.steal = true;
  opt.shards = 3;
  opt.prefetch = true;

  obs::Tracer::Instance().Start(1024);
  pool.Clear();
  auto params =
      core::TrainGmm(rel, opt, core::Algorithm::kFactorized, &pool, nullptr);
  obs::Tracer::Instance().Stop();
  ASSERT_TRUE(params.ok()) << params.status().ToString();

  obs::RunManifest manifest;
  manifest.binary = "obs_test";
  manifest.threads = opt.threads;
  const std::string path = dir.str() + "/trace.json";
  FML_ASSERT_OK(obs::Tracer::Instance().WriteJson(path, manifest.ToJson()));

  std::string other_data;
  const std::vector<ParsedEvent> events = ParseTrace(path, &other_data);
  EXPECT_EQ(other_data, manifest.ToJson());
  ASSERT_FALSE(events.empty());

  // Every layer of the runtime shows up: parallel regions and worker
  // tasks (exec), morsels with the owner/stolen tag (morsel), demand
  // reads and the async prefetch plane (storage), iterations, scans,
  // shard windows and the delta plane (pipeline), model phases (phase).
  std::map<std::string, int> count;
  for (const auto& ev : events) count[ev.name]++;
  for (const char* name :
       {"region", "task", "chunk", "demand_read", "prefetch_issue",
        "prefetch_drain", "iteration", "scan", "shard_scan",
        "delta_extract", "delta_apply", "delta_merge", "e_step"}) {
    EXPECT_GT(count[name], 0) << name;
  }
  // 2 iterations x 3 passes x 3 shards of scan windows.
  EXPECT_EQ(count["shard_scan"], 18);
  EXPECT_EQ(count["delta_extract"], 18);
  EXPECT_EQ(count["delta_merge"], 6);
  EXPECT_EQ(count["iteration"], 2);
  for (const auto& ev : events) {
    if (ev.name == "chunk") {
      EXPECT_NE(ev.args.find("\"chunk\":"), std::string::npos);
      EXPECT_NE(ev.args.find("\"stolen\":"), std::string::npos);
    }
  }

  // Complete spans nest properly within each thread: sorted by (ts asc,
  // dur desc), every span fits inside the enclosing one still open. This
  // is what makes the file render as a sane flame graph.
  std::map<int, std::vector<ParsedEvent>> by_tid;
  for (const auto& ev : events) {
    if (ev.ph == 'X') by_tid[ev.tid].push_back(ev);
  }
  EXPECT_GE(by_tid.size(), 2u);  // dispatcher + at least one pool worker
  for (auto& [tid, evs] : by_tid) {
    std::stable_sort(evs.begin(), evs.end(),
                     [](const ParsedEvent& a, const ParsedEvent& b) {
                       return a.ts != b.ts ? a.ts < b.ts : a.dur > b.dur;
                     });
    std::vector<uint64_t> open_ends;
    for (const auto& ev : evs) {
      while (!open_ends.empty() && open_ends.back() <= ev.ts) {
        open_ends.pop_back();
      }
      if (!open_ends.empty()) {
        EXPECT_LE(ev.ts + ev.dur, open_ends.back())
            << ev.name << " overlaps its enclosing span on tid " << tid;
      }
      open_ends.push_back(ev.ts + ev.dur);
    }
  }
}

// --------------------------------------------------------------- metrics

TEST(MetricsTest, CounterGaugeHistogramRoundTrip) {
  auto& reg = obs::Registry::Instance();
  obs::Counter* c = reg.GetCounter("test.counter");
  obs::Gauge* g = reg.GetGauge("test.gauge");
  obs::Histogram* h = reg.GetHistogram("test.hist");
  EXPECT_EQ(reg.GetCounter("test.counter"), c);  // stable pointers

  const obs::MetricsSnapshot before = reg.Snap();
  c->Add(5);
  g->Set(2.5);
  h->Record(0);    // bucket 0: < 1us
  h->Record(3);    // bucket 2: < 4us
  h->Record(100);  // bucket 7: < 128us
  const obs::MetricsSnapshot delta = obs::SnapshotDelta(reg.Snap(), before);

  std::map<std::string, const obs::MetricSample*> by_name;
  for (const auto& s : delta) by_name[s.name] = &s;
  ASSERT_TRUE(by_name.count("test.counter"));
  EXPECT_EQ(by_name["test.counter"]->value, 5.0);
  ASSERT_TRUE(by_name.count("test.gauge"));
  EXPECT_EQ(by_name["test.gauge"]->value, 2.5);  // gauges: after value
  ASSERT_TRUE(by_name.count("test.hist"));
  const obs::MetricSample& hs = *by_name["test.hist"];
  EXPECT_EQ(hs.count, 3u);
  EXPECT_EQ(hs.sum, 103u);
  ASSERT_EQ(hs.buckets.size(), obs::Histogram::kBuckets);
  EXPECT_EQ(hs.buckets[0], 1u);
  EXPECT_EQ(hs.buckets[2], 1u);
  EXPECT_EQ(hs.buckets[7], 1u);
}

TEST(MetricsTest, HistogramOverflowLandsInLastBucket) {
  obs::Histogram h;
  h.Record(uint64_t{1} << 40);  // ~13 days in micros: off the scale
  EXPECT_EQ(h.Bucket(obs::Histogram::kBuckets - 1), 1u);
}

TEST(MetricsTest, SnapshotToJsonFlattens) {
  auto& reg = obs::Registry::Instance();
  const obs::MetricsSnapshot before = reg.Snap();
  reg.GetCounter("test.json_counter")->Add(7);
  reg.GetHistogram("test.json_hist")->Record(10);
  const std::string json =
      obs::SnapshotToJson(obs::SnapshotDelta(reg.Snap(), before));
  EXPECT_NE(json.find("\"test.json_counter\": 7"), std::string::npos)
      << json;
  EXPECT_NE(json.find("\"test.json_hist.count\": 1"), std::string::npos)
      << json;
  EXPECT_NE(json.find("\"test.json_hist.sum_micros\": 10"),
            std::string::npos)
      << json;
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json.back(), '}');
}

TEST(MetricsTest, TrainingPopulatesReportMetrics) {
  TempDir dir;
  BufferPool pool(512);
  auto rel = std::move(GenerateSynthetic(Spec(dir.str()), &pool)).value();
  gmm::GmmOptions opt = GmmOpt(dir.str());
  core::TrainReport report;
  auto params = core::TrainGmm(rel, opt, core::Algorithm::kFactorized,
                               &pool, &report);
  ASSERT_TRUE(params.ok()) << params.status().ToString();
  std::map<std::string, const obs::MetricSample*> by_name;
  for (const auto& s : report.metrics) by_name[s.name] = &s;
  // The chunked run executed morsels and counted iterations; demand
  // stalls were recorded per physical read.
  ASSERT_TRUE(by_name.count("exec.chunks"));
  EXPECT_GE(by_name["exec.chunks"]->value, 15.0);
  ASSERT_TRUE(by_name.count("pipeline.iterations"));
  EXPECT_EQ(by_name["pipeline.iterations"]->value, 2.0);
  ASSERT_TRUE(by_name.count("storage.demand_stall_micros"));
  EXPECT_GT(by_name["storage.demand_stall_micros"]->count, 0u);
  ASSERT_TRUE(by_name.count("exec.morsel_micros"));
  EXPECT_EQ(by_name["exec.morsel_micros"]->count,
            by_name["exec.chunks"]->value);
}

// -------------------------------------------------------------- manifest

TEST(ManifestTest, FromArgsResolvesAndRoundTrips) {
  TempDir dir;
  const std::string trace_arg = "--trace=" + dir.str() + "/t.json";
  const char* argv[] = {"prog",          trace_arg.c_str(), "--threads=4",
                        "--steal=on",    "--shards=3",      "--seed=7",
                        "--morsel-rows=200"};
  ArgParser args(7, const_cast<char**>(argv));
  const obs::RunManifest m = obs::RunManifest::FromArgs("obs_test", args);
  EXPECT_EQ(m.binary, "obs_test");
  EXPECT_EQ(m.threads, 4);
  EXPECT_TRUE(m.steal);
  EXPECT_EQ(m.shards, 3);
  EXPECT_EQ(m.morsel_rows, 200);
  EXPECT_EQ(m.seed, 7u);
  EXPECT_FALSE(m.git_describe.empty());

  const std::string json = m.ToJson();
  for (const char* key :
       {"\"binary\"", "\"git_describe\"", "\"threads\": 4",
        "\"steal\": true", "\"shards\": 3", "\"morsel_rows\": 200",
        "\"seed\": 7", "\"trace\":", "\"trace_buffer_kb\":"}) {
    EXPECT_NE(json.find(key), std::string::npos) << key;
  }

  const std::string out = dir.str() + "/manifest.json";
  FML_ASSERT_OK(m.WriteTo(out));
  std::ifstream in(out);
  std::string line;
  ASSERT_TRUE(std::getline(in, line));
  EXPECT_EQ(line, json);
}

TEST(ManifestTest, JsonEscapesFreeFormFields) {
  obs::RunManifest m;
  m.binary = "a\"b\\c";
  const std::string json = m.ToJson();
  EXPECT_NE(json.find("a\\\"b\\\\c"), std::string::npos) << json;
}

// ----------------------------------------------------------- trace parity
//
// The plane's hard constraint: tracing observes, never perturbs. An
// instrumented run touches only per-thread rings and the monotonic clock
// — no OpCounters, no IoStats, no scheduler state — so objectives, op
// counts and model params are bit-identical to the untraced run at every
// schedule, and page I/O is bit-identical wherever the schedule itself is
// I/O-deterministic (steal off; stealing re-homes chunks into thief
// pools, making page counters schedule-unstable even without tracing —
// same caveat as ShardParityTest).

TEST(TraceParityTest, TraceOnIsBitIdenticalToTraceOff) {
  TempDir dir;
  BufferPool pool(512);
  auto rel = std::move(GenerateSynthetic(Spec(dir.str()), &pool)).value();
  gmm::GmmOptions opt = GmmOpt(dir.str());
  for (const int threads : {1, 4}) {
    for (const bool steal : {false, true}) {
      for (const int shards : {1, 3}) {
        opt.threads = threads;
        opt.steal = steal;
        opt.shards = shards;
        const std::string tag = "threads=" + std::to_string(threads) +
                                " steal=" + std::to_string(steal) +
                                " shards=" + std::to_string(shards);

        pool.Clear();
        core::TrainReport off_report;
        auto off = core::TrainGmm(rel, opt, core::Algorithm::kFactorized,
                                  &pool, &off_report);
        ASSERT_TRUE(off.ok()) << off.status().ToString();

        obs::Tracer::Instance().Start(1024);
        pool.Clear();
        core::TrainReport on_report;
        auto on = core::TrainGmm(rel, opt, core::Algorithm::kFactorized,
                                 &pool, &on_report);
        obs::Tracer::Instance().Stop();
        ASSERT_TRUE(on.ok()) << on.status().ToString();
        EXPECT_GT(obs::Tracer::Instance().TotalEvents(), 0u) << tag;

        EXPECT_EQ(on_report.final_objective, off_report.final_objective)
            << tag;
        EXPECT_EQ(on_report.ops.mults, off_report.ops.mults) << tag;
        EXPECT_EQ(on_report.ops.adds, off_report.ops.adds) << tag;
        EXPECT_EQ(on_report.ops.subs, off_report.ops.subs) << tag;
        EXPECT_EQ(on_report.ops.exps, off_report.ops.exps) << tag;
        EXPECT_EQ(gmm::GmmParams::MaxAbsDiff(off.value(), on.value()), 0.0)
            << tag;
        if (!steal) {
          EXPECT_EQ(on_report.io.pages_read, off_report.io.pages_read)
              << tag;
          EXPECT_EQ(on_report.io.pages_written,
                    off_report.io.pages_written)
              << tag;
          EXPECT_EQ(on_report.io.pool_misses, off_report.io.pool_misses)
              << tag;
        }
      }
    }
  }
}

// The simd kernel plane must uphold the same contract: under
// --kernels=simd, trace-on vs trace-off is still bit-identical (simd
// relaxes scalar-vs-simd numerics, never run-to-run determinism), the
// strip decodes show up as "decode_strip" storage spans in the flushed
// trace, and the dispatch gauge plus both latency histograms record the
// batched plane's activity.
TEST(TraceParityTest, SimdKernelsBitIdenticalUnderTraceWithStripSpans) {
  TempDir dir;
  BufferPool pool(512);
  auto rel = std::move(GenerateSynthetic(Spec(dir.str()), &pool)).value();
  gmm::GmmOptions opt = GmmOpt(dir.str());
  opt.kernels = la::KernelMode::kSimd;

  const obs::Histogram* decode =
      obs::Registry::Instance().GetHistogram("storage.decode_strip_micros");
  const obs::Histogram* batch =
      obs::Registry::Instance().GetHistogram("la.batch_kernel_micros");
  const uint64_t decode_before = decode->Count();
  const uint64_t batch_before = batch->Count();

  for (const auto algo :
       {core::Algorithm::kMaterialized, core::Algorithm::kStreaming,
        core::Algorithm::kFactorized}) {
    for (const int threads : {1, 4}) {
      opt.threads = threads;
      const std::string tag = std::string(core::AlgorithmName(algo)) +
                              " threads=" + std::to_string(threads);

      pool.Clear();
      core::TrainReport off_report;
      auto off = core::TrainGmm(rel, opt, algo, &pool, &off_report);
      ASSERT_TRUE(off.ok()) << off.status().ToString();

      obs::Tracer::Instance().Start(1024);
      pool.Clear();
      core::TrainReport on_report;
      auto on = core::TrainGmm(rel, opt, algo, &pool, &on_report);
      obs::Tracer::Instance().Stop();
      ASSERT_TRUE(on.ok()) << on.status().ToString();

      EXPECT_EQ(on_report.final_objective, off_report.final_objective)
          << tag;
      EXPECT_EQ(on_report.ops.mults, off_report.ops.mults) << tag;
      EXPECT_EQ(on_report.ops.adds, off_report.ops.adds) << tag;
      EXPECT_EQ(on_report.ops.subs, off_report.ops.subs) << tag;
      EXPECT_EQ(on_report.ops.exps, off_report.ops.exps) << tag;
      EXPECT_EQ(on_report.io.pages_read, off_report.io.pages_read) << tag;
      EXPECT_EQ(on_report.io.pages_written, off_report.io.pages_written)
          << tag;
      EXPECT_EQ(gmm::GmmParams::MaxAbsDiff(off.value(), on.value()), 0.0)
          << tag;
    }
  }

  // The simd runs decoded strips and dispatched batch kernels; both
  // latency histograms saw them.
  EXPECT_GT(decode->Count(), decode_before);
  EXPECT_GT(batch->Count(), batch_before);
  // 0 = scalar, 1 = portable vector, 2 = avx2; a simd run went last.
  EXPECT_GE(obs::Registry::Instance().GetGauge("kernels.dispatch")->Value(),
            1.0);

  // Only the materialized driver reaches PageCursor::ReadStrips — the
  // fused page-walk decode that emits "decode_strip" spans (streaming and
  // factorized transpose already-assembled rows in memory, no page walk).
  // One traced M run's flush must carry them.
  obs::Tracer::Instance().Start(1024);
  pool.Clear();
  opt.threads = 2;
  auto traced = core::TrainGmm(rel, opt, core::Algorithm::kMaterialized,
                               &pool, nullptr);
  obs::Tracer::Instance().Stop();
  ASSERT_TRUE(traced.ok()) << traced.status().ToString();
  const std::string path = dir.str() + "/simd_trace.json";
  FML_ASSERT_OK(obs::Tracer::Instance().WriteJson(path, "{}"));
  const std::vector<ParsedEvent> events = ParseTrace(path, nullptr);
  int decode_spans = 0;
  for (const auto& ev : events) {
    if (ev.name == "decode_strip") ++decode_spans;
  }
  EXPECT_GT(decode_spans, 0);
}

}  // namespace
}  // namespace factorml

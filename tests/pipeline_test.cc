// core/pipeline tests.
//
// 1) Seed-regression: the six GMM/NN trainers, now thin ModelProgram
//    bindings on the pipeline, must reproduce the pre-refactor outputs
//    *bit-identically* at --threads=1 — objectives (exact doubles), op
//    counts and page I/O. The golden values below were captured from the
//    hand-written trainers before the pipeline refactor.
// 2) Parity: the two model families added on top of the pipeline (ridge
//    linear regression, k-means) must produce matching parameters and
//    objectives under all three strategies at threads 1 and 4.

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <tuple>
#include <vector>

#include "core/factorml.h"
#include "core/pipeline/checkpoint.h"
#include "gtest/gtest.h"
#include "test_util.h"

namespace factorml {
namespace {

using data::GenerateSynthetic;
using factorml::testing::TempDir;
using storage::BufferPool;

data::SyntheticSpec Spec(const std::string& dir, bool target) {
  data::SyntheticSpec spec;
  spec.dir = dir;
  spec.s_rows = 3000;
  spec.s_feats = 3;
  spec.attrs = {data::AttributeSpec{40, 5}};
  spec.clusters = 3;
  spec.with_target = target;
  spec.seed = 33;
  return spec;
}

constexpr core::Algorithm kAll[] = {core::Algorithm::kMaterialized,
                                    core::Algorithm::kStreaming,
                                    core::Algorithm::kFactorized};

// ------------------------------------------------- seed bit-exactness

struct Golden {
  double objective;
  uint64_t mults, adds, subs, exps;
  uint64_t pages_read, pages_written;
};

void ExpectGolden(const core::TrainReport& r, const Golden& g) {
  // Op counts and page I/O are integers and must match exactly — they
  // prove the refactored pipeline replays the seed trainers' work
  // stream. The objective goes through libm (exp), which is not
  // correctly rounded across libc versions/platforms, so it gets a
  // last-ulps relative tolerance instead of bitwise equality.
  EXPECT_NEAR(r.final_objective, g.objective,
              1e-12 * std::fabs(g.objective))
      << r.algorithm;
  EXPECT_EQ(r.ops.mults, g.mults) << r.algorithm;
  EXPECT_EQ(r.ops.adds, g.adds) << r.algorithm;
  EXPECT_EQ(r.ops.subs, g.subs) << r.algorithm;
  EXPECT_EQ(r.ops.exps, g.exps) << r.algorithm;
  EXPECT_EQ(r.io.pages_read, g.pages_read) << r.algorithm;
  EXPECT_EQ(r.io.pages_written, g.pages_written) << r.algorithm;
}

TEST(PipelineSeedRegressionTest, GmmTrainersReproduceSeedOutputs) {
  // Captured from the pre-pipeline trainers at --threads=1 (gcc, x86-64).
  const Golden golden[3] = {
      {-0x1.3685da0d6379dp+15, 4111173, 3920373, 459000, 63072, 49, 32},
      {-0x1.3685da0d6379dp+15, 4111173, 3920373, 459000, 63072, 19, 0},
      {-0x1.3685da0d63798p+15, 1758573, 1700973, 192600, 63072, 19, 0},
  };
  TempDir dir;
  BufferPool pool(512);
  // Same dataset as the NN golden run (target carried; GMM skips it).
  auto rel =
      std::move(GenerateSynthetic(Spec(dir.str(), true), &pool)).value();
  gmm::GmmOptions opt;
  opt.num_components = 3;
  opt.max_iters = 3;
  opt.batch_rows = 256;
  opt.temp_dir = dir.str();
  opt.threads = 1;
  for (int a = 0; a < 3; ++a) {
    pool.Clear();
    core::TrainReport report;
    auto params = core::TrainGmm(rel, opt, kAll[a], &pool, &report);
    ASSERT_TRUE(params.ok()) << params.status().ToString();
    ExpectGolden(report, golden[a]);
    EXPECT_EQ(report.iterations, 3);
  }
}

TEST(PipelineSeedRegressionTest, NnTrainersReproduceSeedOutputs) {
  const Golden golden[3] = {
      {0x1.61d149e909b2ep-4, 3046830, 3051000, 157830, 144000, 49, 32},
      {0x1.61d149e909b2ep-4, 3046830, 3051000, 157830, 144000, 19, 0},
      {0x1.61d149e909b2ep-4, 2480430, 2342520, 157830, 144000, 19, 0},
  };
  TempDir dir;
  BufferPool pool(512);
  auto rel =
      std::move(GenerateSynthetic(Spec(dir.str(), true), &pool)).value();
  nn::NnOptions opt;
  opt.hidden = {16};
  opt.epochs = 3;
  opt.batch_rows = 256;
  opt.temp_dir = dir.str();
  opt.threads = 1;
  for (int a = 0; a < 3; ++a) {
    pool.Clear();
    core::TrainReport report;
    auto mlp = core::TrainNn(rel, opt, kAll[a], &pool, &report);
    ASSERT_TRUE(mlp.ok()) << mlp.status().ToString();
    ExpectGolden(report, golden[a]);
  }
}

// ------------------------------------------------------- linreg parity

class LinregParityTest : public ::testing::TestWithParam<int> {};

TEST_P(LinregParityTest, StrategiesAgree) {
  TempDir dir;
  BufferPool pool(512);
  auto rel =
      std::move(GenerateSynthetic(Spec(dir.str(), true), &pool)).value();
  linreg::LinregOptions opt;
  opt.batch_rows = 256;
  opt.temp_dir = dir.str();
  opt.threads = GetParam();

  linreg::LinregModel models[3];
  core::TrainReport reports[3];
  for (int a = 0; a < 3; ++a) {
    pool.Clear();
    auto m = core::TrainLinreg(rel, opt, kAll[a], &pool, &reports[a]);
    ASSERT_TRUE(m.ok()) << m.status().ToString();
    models[a] = std::move(m).value();
    EXPECT_EQ(reports[a].threads, GetParam());
    EXPECT_EQ(reports[a].iterations, 1);
  }
  EXPECT_EQ(reports[0].algorithm, "M-LINREG");
  EXPECT_EQ(reports[1].algorithm, "S-LINREG");
  EXPECT_EQ(reports[2].algorithm, "F-LINREG");
  // All strategies accumulate the same Gram/cofactor statistics; the
  // factorized path reorders the additions, hence the tolerance.
  EXPECT_LT(linreg::LinregModel::MaxAbsDiff(models[0], models[1]), 1e-8);
  EXPECT_LT(linreg::LinregModel::MaxAbsDiff(models[0], models[2]), 1e-6);
  EXPECT_NEAR(reports[0].final_objective, reports[2].final_objective,
              1e-6 * std::fabs(reports[0].final_objective) + 1e-12);
  // The factorization must pay: fewer multiplies than the dense paths.
  EXPECT_LT(reports[2].ops.mults, reports[1].ops.mults);
}

INSTANTIATE_TEST_SUITE_P(Threads, LinregParityTest, ::testing::Values(1, 4));

TEST(LinregTest, RecoversPlantedSignalBetterThanMean) {
  TempDir dir;
  BufferPool pool(512);
  auto rel =
      std::move(GenerateSynthetic(Spec(dir.str(), true), &pool)).value();
  linreg::LinregOptions opt;
  opt.temp_dir = dir.str();
  opt.threads = 1;
  core::TrainReport report;
  auto m = core::TrainLinreg(rel, opt, core::Algorithm::kFactorized, &pool,
                             &report);
  ASSERT_TRUE(m.ok()) << m.status().ToString();
  EXPECT_EQ(m->dims(), rel.total_dims());
  // The synthetic target depends on the joined features; a fitted ridge
  // model must beat the best constant predictor, whose half-MSE is
  // Var(y)/2 (Y is S feature column 0).
  double sum = 0.0, sum_sq = 0.0;
  storage::TableScanner scan(&rel.s, &pool, 4096);
  storage::RowBatch batch;
  while (scan.Next(&batch)) {
    for (size_t r = 0; r < batch.num_rows; ++r) {
      const double y = batch.feats(r, 0);
      sum += y;
      sum_sq += y * y;
    }
  }
  ASSERT_TRUE(scan.status().ok());
  const double n = static_cast<double>(rel.s.num_rows());
  const double mean = sum / n;
  const double var = sum_sq / n - mean * mean;
  EXPECT_GT(report.final_objective, 0.0);
  EXPECT_LT(report.final_objective, 0.9 * var / 2.0);
}

TEST(LinregTest, ParallelMatchesSerial) {
  TempDir dir;
  BufferPool pool(512);
  auto rel =
      std::move(GenerateSynthetic(Spec(dir.str(), true), &pool)).value();
  linreg::LinregOptions opt;
  opt.batch_rows = 256;
  opt.temp_dir = dir.str();
  for (const auto algo : kAll) {
    opt.threads = 1;
    pool.Clear();
    auto serial = core::TrainLinreg(rel, opt, algo, &pool, nullptr);
    ASSERT_TRUE(serial.ok());
    opt.threads = 4;
    pool.Clear();
    auto parallel = core::TrainLinreg(rel, opt, algo, &pool, nullptr);
    ASSERT_TRUE(parallel.ok());
    EXPECT_LT(linreg::LinregModel::MaxAbsDiff(serial.value(),
                                              parallel.value()),
              1e-8)
        << core::AlgorithmName(algo);
  }
}

TEST(LinregTest, RequiresTarget) {
  TempDir dir;
  BufferPool pool(512);
  auto rel =
      std::move(GenerateSynthetic(Spec(dir.str(), false), &pool)).value();
  linreg::LinregOptions opt;
  opt.temp_dir = dir.str();
  auto m = core::TrainLinreg(rel, opt, core::Algorithm::kStreaming, &pool,
                             nullptr);
  EXPECT_FALSE(m.ok());
  EXPECT_EQ(m.status().code(), StatusCode::kInvalidArgument);
}

// ------------------------------------------------------- kmeans parity

class KmeansParityTest : public ::testing::TestWithParam<int> {};

TEST_P(KmeansParityTest, StrategiesAgree) {
  TempDir dir;
  BufferPool pool(512);
  auto rel =
      std::move(GenerateSynthetic(Spec(dir.str(), false), &pool)).value();
  kmeans::KmeansOptions opt;
  opt.num_clusters = 3;
  opt.max_iters = 5;
  opt.batch_rows = 256;
  opt.temp_dir = dir.str();
  opt.threads = GetParam();

  kmeans::KmeansModel models[3];
  core::TrainReport reports[3];
  for (int a = 0; a < 3; ++a) {
    pool.Clear();
    auto m = core::TrainKmeans(rel, opt, kAll[a], &pool, &reports[a]);
    ASSERT_TRUE(m.ok()) << m.status().ToString();
    models[a] = std::move(m).value();
    EXPECT_EQ(reports[a].iterations, 5);
  }
  EXPECT_EQ(reports[0].algorithm, "M-KMEANS");
  EXPECT_EQ(reports[2].algorithm, "F-KMEANS");
  EXPECT_LT(kmeans::KmeansModel::MaxAbsDiff(models[0], models[1]), 1e-9);
  EXPECT_LT(kmeans::KmeansModel::MaxAbsDiff(models[0], models[2]), 1e-7);
  EXPECT_NEAR(reports[0].final_objective, reports[2].final_objective,
              1e-7 * std::fabs(reports[0].final_objective));
  // Cluster sizes of the final assignment must agree exactly.
  for (int a = 1; a < 3; ++a) {
    ASSERT_EQ(models[a].counts.size(), models[0].counts.size());
    for (size_t c = 0; c < models[0].counts.size(); ++c) {
      EXPECT_EQ(models[a].counts[c], models[0].counts[c]);
    }
  }
  // The factorization must pay: fewer multiplies than the streamed path.
  EXPECT_LT(reports[2].ops.mults, reports[1].ops.mults);
}

INSTANTIATE_TEST_SUITE_P(Threads, KmeansParityTest, ::testing::Values(1, 4));

TEST(KmeansTest, InertiaDecreasesAcrossIterations) {
  TempDir dir;
  BufferPool pool(512);
  auto rel =
      std::move(GenerateSynthetic(Spec(dir.str(), false), &pool)).value();
  kmeans::KmeansOptions opt;
  opt.num_clusters = 3;
  opt.temp_dir = dir.str();
  opt.threads = 1;
  core::TrainReport r1, r5;
  opt.max_iters = 1;
  auto m1 = core::TrainKmeans(rel, opt, core::Algorithm::kFactorized, &pool,
                              &r1);
  ASSERT_TRUE(m1.ok());
  opt.max_iters = 5;
  auto m5 = core::TrainKmeans(rel, opt, core::Algorithm::kFactorized, &pool,
                              &r5);
  ASSERT_TRUE(m5.ok());
  EXPECT_LE(r5.final_objective, r1.final_objective);
  EXPECT_GT(r5.final_objective, 0.0);
}

TEST(KmeansTest, ToleranceStopsEarly) {
  TempDir dir;
  BufferPool pool(512);
  auto rel =
      std::move(GenerateSynthetic(Spec(dir.str(), false), &pool)).value();
  kmeans::KmeansOptions opt;
  opt.num_clusters = 3;
  opt.max_iters = 50;
  opt.tol = 1e-6;
  opt.temp_dir = dir.str();
  opt.threads = 1;
  core::TrainReport report;
  auto m = core::TrainKmeans(rel, opt, core::Algorithm::kStreaming, &pool,
                             &report);
  ASSERT_TRUE(m.ok());
  EXPECT_LT(report.iterations, 50);
}

TEST(KmeansTest, RejectsZeroClusters) {
  TempDir dir;
  BufferPool pool(512);
  auto rel =
      std::move(GenerateSynthetic(Spec(dir.str(), false), &pool)).value();
  kmeans::KmeansOptions opt;
  opt.num_clusters = 0;
  opt.temp_dir = dir.str();
  for (const auto algo : kAll) {
    auto m = core::TrainKmeans(rel, opt, algo, &pool, nullptr);
    EXPECT_FALSE(m.ok()) << core::AlgorithmName(algo);
    EXPECT_EQ(m.status().code(), StatusCode::kInvalidArgument);
  }
}

TEST(KmeansTest, MultiwayFactorizedMatches) {
  TempDir dir;
  BufferPool pool(512);
  auto spec = Spec(dir.str(), false);
  spec.attrs.push_back(data::AttributeSpec{15, 2});
  auto rel = std::move(GenerateSynthetic(spec, &pool)).value();
  kmeans::KmeansOptions opt;
  opt.num_clusters = 3;
  opt.max_iters = 4;
  opt.batch_rows = 256;
  opt.temp_dir = dir.str();
  opt.threads = 1;
  auto m = core::TrainKmeans(rel, opt, core::Algorithm::kMaterialized, &pool,
                             nullptr);
  auto f = core::TrainKmeans(rel, opt, core::Algorithm::kFactorized, &pool,
                             nullptr);
  ASSERT_TRUE(m.ok() && f.ok());
  EXPECT_LT(kmeans::KmeansModel::MaxAbsDiff(m.value(), f.value()), 1e-7);
}

// -------------------------------------- chunk-ordered scheduler parity
//
// The chunk-ordered determinism contract: with --morsel-rows set, the
// full-pass plan is a fixed chunk list (a data invariant), every chunk
// owns accumulator slot = its chunk id, and the reduction merges in chunk
// order — so the thread count and the steal schedule can change who
// computes a chunk but never what is merged. These runs must therefore be
// bit-identical, not merely close. (The randomized fuzz_parity_test
// stresses the same property across random schemas; these fixed cases run
// in tier1 and under TSan.)

template <typename Report>
void ExpectBitIdentical(const Report& a, const Report& b,
                        const char* what) {
  EXPECT_EQ(a.final_objective, b.final_objective) << what;
  EXPECT_EQ(a.ops.mults, b.ops.mults) << what;
  EXPECT_EQ(a.ops.adds, b.ops.adds) << what;
  EXPECT_EQ(a.ops.subs, b.ops.subs) << what;
  EXPECT_EQ(a.ops.exps, b.ops.exps) << what;
}

TEST(StealingParityTest, GmmChunkedScheduleInvariant) {
  TempDir dir;
  BufferPool pool(512);
  auto rel =
      std::move(GenerateSynthetic(Spec(dir.str(), false), &pool)).value();
  gmm::GmmOptions opt;
  opt.num_components = 3;
  opt.max_iters = 2;
  opt.batch_rows = 256;
  opt.morsel_rows = 200;  // ~15 chunks over 3000 rows
  opt.temp_dir = dir.str();
  for (const auto algo : kAll) {
    opt.threads = 1;
    opt.steal = false;
    pool.Clear();
    core::TrainReport base_report;
    auto base = core::TrainGmm(rel, opt, algo, &pool, &base_report);
    ASSERT_TRUE(base.ok()) << base.status().ToString();
    EXPECT_GT(base_report.morsel_chunks, 1);
    for (const auto& [threads, steal] :
         {std::tuple{4, false}, std::tuple{1, true}, std::tuple{4, true}}) {
      opt.threads = threads;
      opt.steal = steal;
      pool.Clear();
      core::TrainReport report;
      auto params = core::TrainGmm(rel, opt, algo, &pool, &report);
      ASSERT_TRUE(params.ok()) << params.status().ToString();
      ExpectBitIdentical(report, base_report, core::AlgorithmName(algo));
      EXPECT_EQ(gmm::GmmParams::MaxAbsDiff(base.value(), params.value()),
                0.0)
          << core::AlgorithmName(algo) << " threads=" << threads
          << " steal=" << steal;
    }
  }
}

TEST(StealingParityTest, LinregKmeansChunkedScheduleInvariant) {
  TempDir dir;
  BufferPool pool(512);
  auto rel =
      std::move(GenerateSynthetic(Spec(dir.str(), true), &pool)).value();
  for (const auto algo : kAll) {
    linreg::LinregOptions lopt;
    lopt.batch_rows = 256;
    lopt.morsel_rows = 128;
    lopt.temp_dir = dir.str();
    lopt.threads = 1;
    pool.Clear();
    core::TrainReport lbase_report;
    auto lbase = core::TrainLinreg(rel, lopt, algo, &pool, &lbase_report);
    ASSERT_TRUE(lbase.ok());
    kmeans::KmeansOptions kopt;
    kopt.num_clusters = 3;
    kopt.max_iters = 3;
    kopt.batch_rows = 256;
    kopt.morsel_rows = 128;
    kopt.temp_dir = dir.str();
    kopt.threads = 1;
    pool.Clear();
    core::TrainReport kbase_report;
    auto kbase = core::TrainKmeans(rel, kopt, algo, &pool, &kbase_report);
    ASSERT_TRUE(kbase.ok());
    for (const bool steal : {false, true}) {
      lopt.threads = 4;
      lopt.steal = steal;
      pool.Clear();
      core::TrainReport lr;
      auto lm = core::TrainLinreg(rel, lopt, algo, &pool, &lr);
      ASSERT_TRUE(lm.ok());
      ExpectBitIdentical(lr, lbase_report, "linreg");
      EXPECT_EQ(linreg::LinregModel::MaxAbsDiff(lbase.value(), lm.value()),
                0.0);
      kopt.threads = 4;
      kopt.steal = steal;
      pool.Clear();
      core::TrainReport kr;
      auto km = core::TrainKmeans(rel, kopt, algo, &pool, &kr);
      ASSERT_TRUE(km.ok());
      ExpectBitIdentical(kr, kbase_report, "kmeans");
      EXPECT_EQ(kmeans::KmeansModel::MaxAbsDiff(kbase.value(), km.value()),
                0.0);
    }
  }
}

TEST(StealingParityTest, SingleGiantRunStillBalancesAndMatches) {
  // One run carries nearly every fact row: the worst case for static run
  // morsels ("runs longer than a chunk"). The giant run is atomic — it
  // becomes one chunk — and results stay schedule-invariant.
  TempDir dir;
  BufferPool pool(512);
  auto spec = Spec(dir.str(), false);
  spec.run_dist = data::RunDist::kSingleGiant;
  auto rel = std::move(GenerateSynthetic(spec, &pool)).value();
  kmeans::KmeansOptions opt;
  opt.num_clusters = 3;
  opt.max_iters = 3;
  opt.batch_rows = 256;
  opt.morsel_rows = 64;
  opt.temp_dir = dir.str();
  opt.threads = 1;
  pool.Clear();
  core::TrainReport base_report;
  auto base = core::TrainKmeans(rel, opt, core::Algorithm::kFactorized,
                                &pool, &base_report);
  ASSERT_TRUE(base.ok());
  opt.threads = 4;
  opt.steal = true;
  pool.Clear();
  core::TrainReport report;
  auto stolen = core::TrainKmeans(rel, opt, core::Algorithm::kFactorized,
                                  &pool, &report);
  ASSERT_TRUE(stolen.ok());
  ExpectBitIdentical(report, base_report, "giant-run kmeans");
  EXPECT_EQ(kmeans::KmeansModel::MaxAbsDiff(base.value(), stolen.value()),
            0.0);
  EXPECT_EQ(report.morsel_chunks, base_report.morsel_chunks);
  EXPECT_EQ(report.worker_busy_seconds.size(), 4u);
}

TEST(StealingParityTest, StealWithoutMorselRowsUsesDefaultChunking) {
  // --steal=on alone must resolve to the default chunk size rather than
  // silently running the legacy static partition.
  TempDir dir;
  BufferPool pool(512);
  auto rel =
      std::move(GenerateSynthetic(Spec(dir.str(), true), &pool)).value();
  linreg::LinregOptions opt;
  opt.temp_dir = dir.str();
  opt.threads = 2;
  opt.steal = true;
  core::TrainReport report;
  auto m = core::TrainLinreg(rel, opt, core::Algorithm::kStreaming, &pool,
                             &report);
  ASSERT_TRUE(m.ok());
  EXPECT_GT(report.morsel_chunks, 0);
}

// ------------------------------------------------------- logreg parity

class LogregParityTest : public ::testing::TestWithParam<int> {};

TEST_P(LogregParityTest, StrategiesAgree) {
  TempDir dir;
  BufferPool pool(512);
  auto rel =
      std::move(GenerateSynthetic(Spec(dir.str(), true), &pool)).value();
  logreg::LogregOptions opt;
  opt.max_iters = 3;
  opt.batch_rows = 256;
  opt.temp_dir = dir.str();
  opt.threads = GetParam();

  logreg::LogregModel models[3];
  core::TrainReport reports[3];
  for (int a = 0; a < 3; ++a) {
    pool.Clear();
    auto m = core::TrainLogreg(rel, opt, kAll[a], &pool, &reports[a]);
    ASSERT_TRUE(m.ok()) << m.status().ToString();
    models[a] = std::move(m).value();
    EXPECT_EQ(reports[a].threads, GetParam());
    EXPECT_EQ(reports[a].iterations, 3);
  }
  EXPECT_EQ(reports[0].algorithm, "M-LOGREG");
  EXPECT_EQ(reports[1].algorithm, "S-LOGREG");
  EXPECT_EQ(reports[2].algorithm, "F-LOGREG");
  // All strategies run the identical IRLS recurrence; the factorized path
  // reorders the weighted accumulation, hence the tolerance.
  EXPECT_LT(logreg::LogregModel::MaxAbsDiff(models[0], models[1]), 1e-8);
  EXPECT_LT(logreg::LogregModel::MaxAbsDiff(models[0], models[2]), 1e-5);
  EXPECT_NEAR(reports[0].final_objective, reports[2].final_objective,
              1e-6 * std::fabs(reports[0].final_objective) + 1e-12);
  // The factorization must pay: fewer multiplies than the dense paths.
  EXPECT_LT(reports[2].ops.mults, reports[1].ops.mults);
}

INSTANTIATE_TEST_SUITE_P(Threads, LogregParityTest, ::testing::Values(1, 4));

TEST(LogregTest, SeparatesTargetByPredictedProbability) {
  // The synthetic target is continuous; a fitted soft-label logistic
  // model must still order the rows: the mean target of rows it scores
  // above its median probability has to exceed the mean below.
  TempDir dir;
  BufferPool pool(512);
  auto rel =
      std::move(GenerateSynthetic(Spec(dir.str(), true), &pool)).value();
  logreg::LogregOptions opt;
  opt.max_iters = 4;
  opt.temp_dir = dir.str();
  opt.threads = 1;
  core::TrainReport report;
  auto m = core::TrainLogreg(rel, opt, core::Algorithm::kFactorized, &pool,
                             &report);
  ASSERT_TRUE(m.ok()) << m.status().ToString();
  EXPECT_EQ(m->dims(), rel.total_dims());

  auto joined = core::pipeline::AssembleJoinedRows(
      rel, &pool, [&] {
        std::vector<int64_t> rows(static_cast<size_t>(rel.s.num_rows()));
        for (size_t i = 0; i < rows.size(); ++i) rows[i] = static_cast<int64_t>(i);
        return rows;
      }());
  ASSERT_TRUE(joined.ok());
  storage::RowBatch batch;
  ASSERT_TRUE(
      rel.s.ReadRows(&pool, 0, static_cast<size_t>(rel.s.num_rows()), &batch)
          .ok());
  std::vector<double> probs(batch.num_rows);
  for (size_t r = 0; r < batch.num_rows; ++r) {
    probs[r] = m->PredictProb(joined->Row(r).data());
  }
  std::vector<double> sorted = probs;
  std::nth_element(sorted.begin(), sorted.begin() + sorted.size() / 2,
                   sorted.end());
  const double median = sorted[sorted.size() / 2];
  double hi_sum = 0.0, lo_sum = 0.0;
  int hi_n = 0, lo_n = 0;
  for (size_t r = 0; r < batch.num_rows; ++r) {
    const double y = batch.feats(r, 0);
    if (probs[r] > median) {
      hi_sum += y;
      ++hi_n;
    } else {
      lo_sum += y;
      ++lo_n;
    }
  }
  ASSERT_GT(hi_n, 0);
  ASSERT_GT(lo_n, 0);
  EXPECT_GT(hi_sum / hi_n, lo_sum / lo_n);
}

TEST(LogregTest, RequiresTargetAndValidOptions) {
  TempDir dir;
  BufferPool pool(512);
  auto rel =
      std::move(GenerateSynthetic(Spec(dir.str(), false), &pool)).value();
  logreg::LogregOptions opt;
  opt.temp_dir = dir.str();
  auto m = core::TrainLogreg(rel, opt, core::Algorithm::kStreaming, &pool,
                             nullptr);
  EXPECT_FALSE(m.ok());
  EXPECT_EQ(m.status().code(), StatusCode::kInvalidArgument);

  auto rel_t =
      std::move(GenerateSynthetic(
                    [&] {
                      auto s = Spec(dir.str(), true);
                      s.name = "t2";
                      return s;
                    }(),
                    &pool))
          .value();
  opt.max_iters = 0;
  auto bad = core::TrainLogreg(rel_t, opt, core::Algorithm::kStreaming, &pool,
                               nullptr);
  EXPECT_FALSE(bad.ok());
  EXPECT_EQ(bad.status().code(), StatusCode::kInvalidArgument);
}

// --------------------------------------------- prefetch residency-only
//
// The I/O cursor plane's extended determinism contract: prefetch changes
// page residency, never values, op counts, or merge order. A prefetched
// run must therefore be bit-identical to the demand-only baseline under
// every thread count and steal schedule, while the demand-only run keeps
// the exact page-I/O counts the seed goldens pin.

TEST(PrefetchParityTest, GmmPrefetchedRunsAreBitIdentical) {
  TempDir dir;
  BufferPool pool(512);
  auto rel =
      std::move(GenerateSynthetic(Spec(dir.str(), false), &pool)).value();
  gmm::GmmOptions opt;
  opt.num_components = 3;
  opt.max_iters = 2;
  opt.batch_rows = 256;
  opt.morsel_rows = 200;
  opt.temp_dir = dir.str();
  uint64_t prefetch_reads_total = 0;
  for (const auto algo : kAll) {
    opt.threads = 1;
    opt.steal = false;
    opt.prefetch = false;
    pool.Clear();
    core::TrainReport base_report;
    auto base = core::TrainGmm(rel, opt, algo, &pool, &base_report);
    ASSERT_TRUE(base.ok()) << base.status().ToString();
    EXPECT_EQ(base_report.io.prefetch_reads, 0u);
    EXPECT_EQ(base_report.io.prefetch_hits, 0u);
    opt.prefetch = true;
    for (const auto& [threads, steal] :
         {std::tuple{1, false}, std::tuple{2, true}, std::tuple{4, false},
          std::tuple{4, true}}) {
      opt.threads = threads;
      opt.steal = steal;
      pool.Clear();
      core::TrainReport report;
      auto params = core::TrainGmm(rel, opt, algo, &pool, &report);
      ASSERT_TRUE(params.ok()) << params.status().ToString();
      ExpectBitIdentical(report, base_report, core::AlgorithmName(algo));
      EXPECT_EQ(gmm::GmmParams::MaxAbsDiff(base.value(), params.value()),
                0.0)
          << core::AlgorithmName(algo) << " threads=" << threads
          << " steal=" << steal << " prefetch=on";
      prefetch_reads_total += report.io.prefetch_reads;
    }
  }
  // The plane must actually have engaged, or the parity above is vacuous.
  // Any single run may lose every crew-vs-demand race on a loaded box,
  // but across 12 prefetched runs the crew lands pages.
  EXPECT_GT(prefetch_reads_total, 0u)
      << "--prefetch=on never issued an async read: wiring regression?";
}

TEST(PrefetchParityTest, LegacyPartitionPrefetchMatchesToo) {
  // Prefetch without chunking: the in-range double buffer alone (no
  // next-chunk plan). Same bits as the demand-only static partition.
  TempDir dir;
  BufferPool pool(512);
  auto rel =
      std::move(GenerateSynthetic(Spec(dir.str(), true), &pool)).value();
  linreg::LinregOptions opt;
  opt.batch_rows = 256;
  opt.temp_dir = dir.str();
  opt.threads = 2;
  pool.Clear();
  core::TrainReport base_report;
  auto base = core::TrainLinreg(rel, opt, core::Algorithm::kMaterialized,
                                &pool, &base_report);
  ASSERT_TRUE(base.ok());
  opt.prefetch = true;
  opt.prefetch_depth = 3;
  pool.Clear();
  core::TrainReport report;
  auto pf = core::TrainLinreg(rel, opt, core::Algorithm::kMaterialized,
                              &pool, &report);
  ASSERT_TRUE(pf.ok());
  ExpectBitIdentical(report, base_report, "legacy prefetch linreg");
  EXPECT_EQ(linreg::LinregModel::MaxAbsDiff(base.value(), pf.value()), 0.0);
}

// --------------------------------------------------- shard-plane parity
//
// The sharded rid-range execution plane's determinism contract: shard =
// contiguous span of the fixed chunk plan, slot = global chunk id, each
// shard's slots round-trip through serialized ShardDelta bytes, and the
// deltas merge in shard-id (= global chunk) order. Objectives, params and
// op counts are therefore bit-identical to --shards=1 at the same morsel
// size under ANY threads x steal x prefetch schedule; and because the
// in-process backend time-shares the unsharded run's worker pools with
// global chunk ownership (exec::RunMorselSpan), total page I/O is ALSO
// bit-identical whenever the schedule itself is I/O-deterministic (steal
// and prefetch off — stealing re-homes chunks into thief pools and
// prefetch races the crew, so those counters are not schedule-stable even
// at shards=1). The randomized fuzz_parity_test stresses the same
// contract across random schemas; these fixed cases run in tier1 and
// under TSan.

TEST(ShardParityTest, GmmShardedBitIdenticalIncludingPageIo) {
  TempDir dir;
  BufferPool pool(512);
  auto rel =
      std::move(GenerateSynthetic(Spec(dir.str(), false), &pool)).value();
  gmm::GmmOptions opt;
  opt.num_components = 3;
  opt.max_iters = 2;
  opt.batch_rows = 256;
  opt.morsel_rows = 200;
  opt.temp_dir = dir.str();
  for (const auto algo : kAll) {
    for (const int threads : {1, 4}) {
      opt.threads = threads;
      opt.shards = 1;
      pool.Clear();
      core::TrainReport base_report;
      auto base = core::TrainGmm(rel, opt, algo, &pool, &base_report);
      ASSERT_TRUE(base.ok()) << base.status().ToString();
      EXPECT_EQ(base_report.shards, 1);
      EXPECT_TRUE(base_report.shard_stats.empty());
      for (const int shards : {2, 4}) {
        opt.shards = shards;
        pool.Clear();
        core::TrainReport report;
        auto params = core::TrainGmm(rel, opt, algo, &pool, &report);
        ASSERT_TRUE(params.ok()) << params.status().ToString();
        const std::string tag = std::string(core::AlgorithmName(algo)) +
                                " threads=" + std::to_string(threads) +
                                " shards=" + std::to_string(shards);
        ExpectBitIdentical(report, base_report, tag.c_str());
        EXPECT_EQ(gmm::GmmParams::MaxAbsDiff(base.value(), params.value()),
                  0.0)
            << tag;
        // Deterministic schedule (steal/prefetch off): the time-shared
        // backend replays the unsharded per-pool page-request sequences,
        // so the whole I/O split matches bit for bit.
        EXPECT_EQ(report.io.pages_read, base_report.io.pages_read) << tag;
        EXPECT_EQ(report.io.pages_written, base_report.io.pages_written)
            << tag;
        EXPECT_EQ(report.io.pool_hits, base_report.io.pool_hits) << tag;
        EXPECT_EQ(report.io.pool_misses, base_report.io.pool_misses) << tag;
        // Effective shard count and spans are recorded and cover the plan.
        EXPECT_EQ(report.shards, shards);
        ASSERT_EQ(report.shard_stats.size(), static_cast<size_t>(shards));
        EXPECT_EQ(report.shard_stats.front().chunk_begin, 0);
        EXPECT_EQ(report.shard_stats.back().chunk_end, report.morsel_chunks);
      }
    }
  }
}

TEST(ShardParityTest, ShardedSchedulesStayBitIdentical) {
  // Sharding composed with stealing and prefetch: who executes a chunk
  // (and when its pages land) may change, what is merged never does.
  TempDir dir;
  BufferPool pool(512);
  auto rel =
      std::move(GenerateSynthetic(Spec(dir.str(), true), &pool)).value();
  struct Sched {
    int shards, threads;
    bool steal, prefetch;
  };
  constexpr Sched kScheds[] = {{3, 4, true, false},
                               {2, 2, false, true},
                               {4, 1, true, false},
                               {2, 4, true, true}};
  for (const auto algo : kAll) {
    linreg::LinregOptions lopt;
    lopt.batch_rows = 256;
    lopt.morsel_rows = 128;
    lopt.temp_dir = dir.str();
    lopt.threads = 1;
    pool.Clear();
    core::TrainReport lbase_report;
    auto lbase = core::TrainLinreg(rel, lopt, algo, &pool, &lbase_report);
    ASSERT_TRUE(lbase.ok());
    logreg::LogregOptions gopt;
    gopt.max_iters = 2;
    gopt.batch_rows = 256;
    gopt.morsel_rows = 128;
    gopt.temp_dir = dir.str();
    gopt.threads = 1;
    pool.Clear();
    core::TrainReport gbase_report;
    auto gbase = core::TrainLogreg(rel, gopt, algo, &pool, &gbase_report);
    ASSERT_TRUE(gbase.ok());
    for (const Sched& sched : kScheds) {
      lopt.shards = sched.shards;
      lopt.threads = sched.threads;
      lopt.steal = sched.steal;
      lopt.prefetch = sched.prefetch;
      pool.Clear();
      core::TrainReport lr;
      auto lm = core::TrainLinreg(rel, lopt, algo, &pool, &lr);
      ASSERT_TRUE(lm.ok());
      ExpectBitIdentical(lr, lbase_report, "sharded linreg");
      EXPECT_EQ(linreg::LinregModel::MaxAbsDiff(lbase.value(), lm.value()),
                0.0)
          << core::AlgorithmName(algo) << " shards=" << sched.shards;
      gopt.shards = sched.shards;
      gopt.threads = sched.threads;
      gopt.steal = sched.steal;
      gopt.prefetch = sched.prefetch;
      pool.Clear();
      core::TrainReport gr;
      auto gm = core::TrainLogreg(rel, gopt, algo, &pool, &gr);
      ASSERT_TRUE(gm.ok());
      ExpectBitIdentical(gr, gbase_report, "sharded logreg");
      EXPECT_EQ(logreg::LogregModel::MaxAbsDiff(gbase.value(), gm.value()),
                0.0)
          << core::AlgorithmName(algo) << " shards=" << sched.shards;
    }
  }
}

TEST(ShardParityTest, ShardsExceedChunksAndGiantRunStayExact) {
  // "shards > rows" and the single-giant-FK1-run worst case: requesting
  // far more shards than the plan has chunks caps the effective count at
  // one chunk per shard (no empty shard ever scans), and the giant run —
  // atomic, one chunk — stays bit-exact through its own shard's delta.
  TempDir dir;
  BufferPool pool(512);
  auto spec = Spec(dir.str(), false);
  spec.run_dist = data::RunDist::kSingleGiant;
  auto rel = std::move(GenerateSynthetic(spec, &pool)).value();
  kmeans::KmeansOptions opt;
  opt.num_clusters = 3;
  opt.max_iters = 3;
  opt.batch_rows = 256;
  opt.morsel_rows = 64;
  opt.temp_dir = dir.str();
  opt.threads = 1;
  pool.Clear();
  core::TrainReport base_report;
  auto base = core::TrainKmeans(rel, opt, core::Algorithm::kFactorized,
                                &pool, &base_report);
  ASSERT_TRUE(base.ok());
  ASSERT_GT(base_report.morsel_chunks, 1);
  opt.shards = 64;  // far beyond the chunk count
  opt.threads = 4;
  opt.steal = true;
  pool.Clear();
  core::TrainReport report;
  auto sharded = core::TrainKmeans(rel, opt, core::Algorithm::kFactorized,
                                   &pool, &report);
  ASSERT_TRUE(sharded.ok());
  ExpectBitIdentical(report, base_report, "over-sharded giant-run kmeans");
  EXPECT_EQ(kmeans::KmeansModel::MaxAbsDiff(base.value(), sharded.value()),
            0.0);
  EXPECT_EQ(report.shards, static_cast<int>(report.morsel_chunks));
  ASSERT_EQ(report.shard_stats.size(), static_cast<size_t>(report.shards));
  for (const auto& stat : report.shard_stats) {
    EXPECT_EQ(stat.chunk_end, stat.chunk_begin + 1);
  }
}

TEST(ShardParityTest, ShardsAloneResolveDefaultChunking) {
  // --shards=N without --morsel-rows must resolve to the default chunk
  // size (like --steal), not silently run the legacy static partition.
  TempDir dir;
  BufferPool pool(512);
  auto rel =
      std::move(GenerateSynthetic(Spec(dir.str(), true), &pool)).value();
  linreg::LinregOptions opt;
  opt.temp_dir = dir.str();
  opt.threads = 2;
  opt.shards = 2;
  core::TrainReport report;
  auto m = core::TrainLinreg(rel, opt, core::Algorithm::kStreaming, &pool,
                             &report);
  ASSERT_TRUE(m.ok());
  // Chunked mode engaged (the 3000-row dataset fits one default-size
  // chunk, so the effective shard count caps at the chunk count).
  EXPECT_GT(report.morsel_chunks, 0);
  EXPECT_EQ(report.shards,
            static_cast<int>(std::min<int64_t>(2, report.morsel_chunks)));
}

TEST(ShardParityTest, MiniBatchFamilyRejectsShards) {
  // The SGD plane's epochs are sequential: no order-free merge exists, so
  // sharding must be rejected up front with a clear error.
  TempDir dir;
  BufferPool pool(512);
  auto rel =
      std::move(GenerateSynthetic(Spec(dir.str(), true), &pool)).value();
  nn::NnOptions opt;
  opt.hidden = {8};
  opt.epochs = 1;
  opt.temp_dir = dir.str();
  opt.threads = 1;
  opt.shards = 2;
  auto mlp = core::TrainNn(rel, opt, core::Algorithm::kStreaming, &pool,
                           nullptr);
  EXPECT_FALSE(mlp.ok());
  EXPECT_EQ(mlp.status().code(), StatusCode::kInvalidArgument);
  opt.shards = 1;
  auto ok = core::TrainNn(rel, opt, core::Algorithm::kStreaming, &pool,
                          nullptr);
  EXPECT_TRUE(ok.ok()) << ok.status().ToString();
}

// ------------------------------------------------------ kernels parity

// --kernels=simd may only change floating-point summation order inside a
// strip. Everything else the determinism contract pins — op counts
// (charged per batch with the scalar per-row formulas) and the page-I/O
// stream of all three access drivers — must match the scalar plane
// exactly under every schedule; objectives and parameters agree to
// tolerance.

template <typename Report>
void ExpectSameWorkStream(const Report& simd, const Report& scalar,
                          const std::string& what) {
  EXPECT_EQ(simd.ops.mults, scalar.ops.mults) << what;
  EXPECT_EQ(simd.ops.adds, scalar.ops.adds) << what;
  EXPECT_EQ(simd.ops.subs, scalar.ops.subs) << what;
  EXPECT_EQ(simd.ops.exps, scalar.ops.exps) << what;
  EXPECT_EQ(simd.io.pages_read, scalar.io.pages_read) << what;
  EXPECT_EQ(simd.io.pages_written, scalar.io.pages_written) << what;
  EXPECT_EQ(simd.io.pool_hits, scalar.io.pool_hits) << what;
  EXPECT_EQ(simd.io.pool_misses, scalar.io.pool_misses) << what;
}

class KernelsParityTest
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(KernelsParityTest, LinregSimdMatchesScalarWorkStream) {
  const auto [threads, shards] = GetParam();
  TempDir dir;
  BufferPool pool(512);
  auto rel =
      std::move(GenerateSynthetic(Spec(dir.str(), true), &pool)).value();
  linreg::LinregOptions opt;
  opt.batch_rows = 256;
  opt.morsel_rows = 200;
  opt.temp_dir = dir.str();
  opt.threads = threads;
  opt.shards = shards;
  for (const auto algo : kAll) {
    opt.kernels = la::KernelMode::kScalar;
    pool.Clear();
    core::TrainReport scalar_report;
    auto scalar = core::TrainLinreg(rel, opt, algo, &pool, &scalar_report);
    ASSERT_TRUE(scalar.ok()) << scalar.status().ToString();
    opt.kernels = la::KernelMode::kSimd;
    pool.Clear();
    core::TrainReport simd_report;
    auto simd = core::TrainLinreg(rel, opt, algo, &pool, &simd_report);
    ASSERT_TRUE(simd.ok()) << simd.status().ToString();
    const std::string tag = std::string(core::AlgorithmName(algo)) +
                            " threads=" + std::to_string(threads) +
                            " shards=" + std::to_string(shards);
    ExpectSameWorkStream(simd_report, scalar_report, tag);
    EXPECT_NEAR(simd_report.final_objective, scalar_report.final_objective,
                1e-9 * std::fabs(scalar_report.final_objective) + 1e-12)
        << tag;
    EXPECT_LT(linreg::LinregModel::MaxAbsDiff(scalar.value(), simd.value()),
              1e-8)
        << tag;
  }
}

TEST_P(KernelsParityTest, GmmSimdMatchesScalarWorkStream) {
  const auto [threads, shards] = GetParam();
  TempDir dir;
  BufferPool pool(512);
  auto rel =
      std::move(GenerateSynthetic(Spec(dir.str(), false), &pool)).value();
  gmm::GmmOptions opt;
  opt.num_components = 3;
  opt.max_iters = 2;
  opt.batch_rows = 256;
  opt.morsel_rows = 200;
  opt.temp_dir = dir.str();
  opt.threads = threads;
  opt.shards = shards;
  for (const auto algo : kAll) {
    opt.kernels = la::KernelMode::kScalar;
    pool.Clear();
    core::TrainReport scalar_report;
    auto scalar = core::TrainGmm(rel, opt, algo, &pool, &scalar_report);
    ASSERT_TRUE(scalar.ok()) << scalar.status().ToString();
    opt.kernels = la::KernelMode::kSimd;
    pool.Clear();
    core::TrainReport simd_report;
    auto simd = core::TrainGmm(rel, opt, algo, &pool, &simd_report);
    ASSERT_TRUE(simd.ok()) << simd.status().ToString();
    const std::string tag = std::string(core::AlgorithmName(algo)) +
                            " threads=" + std::to_string(threads) +
                            " shards=" + std::to_string(shards);
    ExpectSameWorkStream(simd_report, scalar_report, tag);
    // The E-step exp() stream is evaluated row-at-a-time on both planes,
    // so even the exp count — the costliest op — matches exactly (checked
    // above); the log-likelihood itself only moves by summation order.
    EXPECT_NEAR(simd_report.final_objective, scalar_report.final_objective,
                1e-9 * std::fabs(scalar_report.final_objective) + 1e-12)
        << tag;
    EXPECT_LT(gmm::GmmParams::MaxAbsDiff(scalar.value(), simd.value()),
              1e-7)
        << tag;
  }
}

INSTANTIATE_TEST_SUITE_P(Schedules, KernelsParityTest,
                         ::testing::Combine(::testing::Values(1, 4),
                                            ::testing::Values(1, 2)));

TEST(KernelsModelParityTest, KmeansAndLogregSimdMatchScalar) {
  TempDir dir;
  BufferPool pool(512);
  auto rel =
      std::move(GenerateSynthetic(Spec(dir.str(), true), &pool)).value();
  for (const auto algo : kAll) {
    kmeans::KmeansOptions kopt;
    kopt.num_clusters = 3;
    kopt.max_iters = 2;
    kopt.batch_rows = 256;
    kopt.temp_dir = dir.str();
    kopt.threads = 4;
    kopt.kernels = la::KernelMode::kScalar;
    pool.Clear();
    core::TrainReport kscalar_report;
    auto kscalar = core::TrainKmeans(rel, kopt, algo, &pool, &kscalar_report);
    ASSERT_TRUE(kscalar.ok()) << kscalar.status().ToString();
    kopt.kernels = la::KernelMode::kSimd;
    pool.Clear();
    core::TrainReport ksimd_report;
    auto ksimd = core::TrainKmeans(rel, kopt, algo, &pool, &ksimd_report);
    ASSERT_TRUE(ksimd.ok()) << ksimd.status().ToString();
    ExpectSameWorkStream(ksimd_report, kscalar_report, "kmeans");
    EXPECT_NEAR(ksimd_report.final_objective, kscalar_report.final_objective,
                1e-9 * std::fabs(kscalar_report.final_objective) + 1e-12)
        << core::AlgorithmName(algo);
    EXPECT_LT(kmeans::KmeansModel::MaxAbsDiff(kscalar.value(),
                                              ksimd.value()),
              1e-8)
        << core::AlgorithmName(algo);

    logreg::LogregOptions gopt;
    gopt.max_iters = 2;
    gopt.batch_rows = 256;
    gopt.temp_dir = dir.str();
    gopt.threads = 4;
    gopt.kernels = la::KernelMode::kScalar;
    pool.Clear();
    core::TrainReport gscalar_report;
    auto gscalar = core::TrainLogreg(rel, gopt, algo, &pool, &gscalar_report);
    ASSERT_TRUE(gscalar.ok()) << gscalar.status().ToString();
    gopt.kernels = la::KernelMode::kSimd;
    pool.Clear();
    core::TrainReport gsimd_report;
    auto gsimd = core::TrainLogreg(rel, gopt, algo, &pool, &gsimd_report);
    ASSERT_TRUE(gsimd.ok()) << gsimd.status().ToString();
    ExpectSameWorkStream(gsimd_report, gscalar_report, "logreg");
    EXPECT_NEAR(gsimd_report.final_objective, gscalar_report.final_objective,
                1e-9 * std::fabs(gscalar_report.final_objective) + 1e-12)
        << core::AlgorithmName(algo);
    EXPECT_LT(logreg::LogregModel::MaxAbsDiff(gscalar.value(),
                                              gsimd.value()),
              1e-8)
        << core::AlgorithmName(algo);
  }
}

TEST(KernelsModelParityTest, NnSimdMatchesScalarWorkStream) {
  // The strip-fed NN epoch plane: mini-batch drivers pack each sampled
  // batch into column strips and the model runs forward/backward as
  // gemm_strip products. The work stream (op counts charged with the
  // scalar per-row formulas, page I/O of the same batch assembly) must
  // match the scalar plane exactly; the SGD trajectory agrees to
  // tolerance. batch_rows=100 forces every batch into one short partial
  // strip (< kDefaultStripRows), pinning the short-strip path.
  TempDir dir;
  BufferPool pool(512);
  auto rel =
      std::move(GenerateSynthetic(Spec(dir.str(), true), &pool)).value();
  for (const auto algo : kAll) {
    for (const size_t batch_rows : {size_t{256}, size_t{100}}) {
      for (const int threads : {1, 4}) {
        nn::NnOptions opt;
        opt.hidden = {8};
        opt.epochs = 2;
        opt.batch_rows = batch_rows;
        opt.temp_dir = dir.str();
        opt.threads = threads;
        opt.kernels = la::KernelMode::kScalar;
        pool.Clear();
        core::TrainReport scalar_report;
        auto scalar = core::TrainNn(rel, opt, algo, &pool, &scalar_report);
        ASSERT_TRUE(scalar.ok()) << scalar.status().ToString();
        opt.kernels = la::KernelMode::kSimd;
        pool.Clear();
        core::TrainReport simd_report;
        auto simd = core::TrainNn(rel, opt, algo, &pool, &simd_report);
        ASSERT_TRUE(simd.ok()) << simd.status().ToString();
        const std::string tag = std::string(core::AlgorithmName(algo)) +
                                " batch=" + std::to_string(batch_rows) +
                                " threads=" + std::to_string(threads);
        ExpectSameWorkStream(simd_report, scalar_report, tag);
        EXPECT_EQ(simd_report.iterations, scalar_report.iterations) << tag;
        EXPECT_NEAR(
            simd_report.final_objective, scalar_report.final_objective,
            1e-7 * std::fabs(scalar_report.final_objective) + 1e-12)
            << tag;
        EXPECT_LT(nn::Mlp::MaxAbsDiffParams(scalar.value(), simd.value()),
                  1e-6)
            << tag;
      }
    }
  }
}

// ----------------------------------------------- multiway linreg parity

TEST(LinregTest, MultiwayFactorizedMatches) {
  TempDir dir;
  BufferPool pool(512);
  auto spec = Spec(dir.str(), true);
  spec.attrs.push_back(data::AttributeSpec{15, 2});
  auto rel = std::move(GenerateSynthetic(spec, &pool)).value();
  linreg::LinregOptions opt;
  opt.batch_rows = 256;
  opt.temp_dir = dir.str();
  opt.threads = 1;
  auto m = core::TrainLinreg(rel, opt, core::Algorithm::kMaterialized, &pool,
                             nullptr);
  auto f = core::TrainLinreg(rel, opt, core::Algorithm::kFactorized, &pool,
                             nullptr);
  ASSERT_TRUE(m.ok() && f.ok());
  EXPECT_LT(linreg::LinregModel::MaxAbsDiff(m.value(), f.value()), 1e-6);
}

// ------------------------------------------------- checkpoint / restore

double MetricValue(const core::TrainReport& r, const std::string& name) {
  for (const auto& s : r.metrics) {
    if (s.name == name) return s.value;
  }
  return 0.0;
}

TEST(CheckpointTest, FileRoundTripsAndCorruptionIsNamed) {
  TempDir dir;
  core::pipeline::CheckpointState st;
  st.label = "F-GMM";
  st.fingerprint = 0xFEEDFACEu;
  st.completed_iterations = 7;
  st.converged = true;
  st.ops = OpCounters{11, 22, 33, 44};
  st.state = {1.5, -0.0, 0.0, 1e-300, 42.0};
  ASSERT_TRUE(core::pipeline::WriteCheckpoint(dir.str(), st).ok());

  auto back = core::pipeline::ReadCheckpoint(dir.str(), "F-GMM");
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  EXPECT_EQ(back.value().label, st.label);
  EXPECT_EQ(back.value().fingerprint, st.fingerprint);
  EXPECT_EQ(back.value().completed_iterations, 7);
  EXPECT_TRUE(back.value().converged);
  EXPECT_EQ(back.value().ops.mults, 11u);
  EXPECT_EQ(back.value().ops.exps, 44u);
  ASSERT_EQ(back.value().state.size(), st.state.size());
  for (size_t i = 0; i < st.state.size(); ++i) {
    EXPECT_EQ(std::memcmp(&back.value().state[i], &st.state[i],
                          sizeof(double)),
              0)
        << "double " << i;
  }

  // A missing label is NotFound (train fresh), a flipped state byte is
  // InvalidArgument naming the block and both CRCs (warn, train fresh).
  EXPECT_EQ(core::pipeline::ReadCheckpoint(dir.str(), "F-KMEANS")
                .status()
                .code(),
            StatusCode::kNotFound);
  const std::string path = core::pipeline::CheckpointPath(dir.str(), "F-GMM");
  {
    std::FILE* f = std::fopen(path.c_str(), "r+b");
    ASSERT_NE(f, nullptr);
    std::fseek(f, -6, SEEK_END);  // inside the state block's doubles
    std::fputc(0x5A, f);
    std::fclose(f);
  }
  const Status corrupt =
      core::pipeline::ReadCheckpoint(dir.str(), "F-GMM").status();
  EXPECT_EQ(corrupt.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(corrupt.ToString().find("CRC mismatch"), std::string::npos)
      << corrupt.ToString();
}

/// Resume contract, per family: train the full budget uninterrupted,
/// then train half the budget into a checkpoint dir and rerun the full
/// budget from it — objective, op counts and iteration totals must all
/// match the uninterrupted run exactly (bitwise for the objective).
template <typename Options, typename TrainFn, typename DiffFn>
void ExpectResumeParity(const join::NormalizedRelations& rel, Options& opt,
                        int full_budget, core::Algorithm algo,
                        BufferPool* pool, TrainFn train, DiffFn max_abs_diff,
                        int* set_budget, const char* family) {
  TempDir ckpt;
  opt.checkpoint_dir.clear();
  *set_budget = full_budget;
  pool->Clear();
  core::TrainReport base_report;
  auto base = train(rel, opt, algo, pool, &base_report);
  ASSERT_TRUE(base.ok()) << family << ": " << base.status().ToString();

  *set_budget = full_budget / 2;
  opt.checkpoint_dir = ckpt.str();
  pool->Clear();
  core::TrainReport half_report;
  auto half = train(rel, opt, algo, pool, &half_report);
  ASSERT_TRUE(half.ok()) << family << ": " << half.status().ToString();
  ASSERT_EQ(half_report.iterations, full_budget / 2) << family;

  *set_budget = full_budget;
  pool->Clear();
  core::TrainReport resumed_report;
  auto resumed = train(rel, opt, algo, pool, &resumed_report);
  ASSERT_TRUE(resumed.ok()) << family << ": " << resumed.status().ToString();

  EXPECT_EQ(resumed_report.final_objective, base_report.final_objective)
      << family;
  EXPECT_EQ(max_abs_diff(base.value(), resumed.value()), 0.0) << family;
  EXPECT_EQ(resumed_report.iterations, base_report.iterations) << family;
  EXPECT_EQ(resumed_report.ops.mults, base_report.ops.mults) << family;
  EXPECT_EQ(resumed_report.ops.adds, base_report.ops.adds) << family;
  EXPECT_EQ(resumed_report.ops.subs, base_report.ops.subs) << family;
  EXPECT_EQ(resumed_report.ops.exps, base_report.ops.exps) << family;
}

TEST(CheckpointTest, GmmResumeIsBitIdenticalAcrossStrategies) {
  TempDir dir;
  BufferPool pool(512);
  auto rel =
      std::move(GenerateSynthetic(Spec(dir.str(), false), &pool)).value();
  gmm::GmmOptions opt;
  opt.num_components = 3;
  opt.batch_rows = 256;
  opt.temp_dir = dir.str();
  opt.threads = 1;
  for (const auto algo : kAll) {
    ExpectResumeParity(rel, opt, 4, algo, &pool, core::TrainGmm,
                       gmm::GmmParams::MaxAbsDiff, &opt.max_iters, "gmm");
  }
}

TEST(CheckpointTest, KmeansShardedResumeIsBitIdentical) {
  TempDir dir;
  BufferPool pool(512);
  auto rel =
      std::move(GenerateSynthetic(Spec(dir.str(), false), &pool)).value();
  kmeans::KmeansOptions opt;
  opt.num_clusters = 3;
  opt.batch_rows = 256;
  opt.temp_dir = dir.str();
  opt.threads = 2;
  opt.shards = 2;
  opt.morsel_rows = 500;
  ExpectResumeParity(rel, opt, 4, core::Algorithm::kFactorized, &pool,
                     core::TrainKmeans, kmeans::KmeansModel::MaxAbsDiff,
                     &opt.max_iters, "kmeans");
}

TEST(CheckpointTest, NnEpochResumeIsBitIdentical) {
  // The mini-batch plane's seam carries the most state: every layer's
  // weights and biases, the momentum velocities and the dropout
  // generator cursor. Shuffle + dropout + momentum are all on so a
  // missed cursor anywhere breaks the bitwise comparison.
  TempDir dir;
  BufferPool pool(512);
  auto rel =
      std::move(GenerateSynthetic(Spec(dir.str(), true), &pool)).value();
  nn::NnOptions opt;
  opt.hidden = {8};
  opt.batch_rows = 256;
  opt.learning_rate = 0.05;
  opt.shuffle = true;
  opt.hidden_dropout = 0.25;
  opt.momentum = 0.9;
  opt.temp_dir = dir.str();
  opt.threads = 1;
  ExpectResumeParity(rel, opt, 4, core::Algorithm::kFactorized, &pool,
                     core::TrainNn, nn::Mlp::MaxAbsDiffParams, &opt.epochs,
                     "nn");
}

TEST(CheckpointTest, CorruptCheckpointIsSkippedWithFreshStart) {
  TempDir dir;
  TempDir ckpt;
  BufferPool pool(512);
  auto rel =
      std::move(GenerateSynthetic(Spec(dir.str(), false), &pool)).value();
  gmm::GmmOptions opt;
  opt.num_components = 3;
  opt.max_iters = 2;
  opt.batch_rows = 256;
  opt.temp_dir = dir.str();
  opt.threads = 1;
  pool.Clear();
  core::TrainReport base_report;
  auto base =
      core::TrainGmm(rel, opt, core::Algorithm::kFactorized, &pool,
                     &base_report);
  ASSERT_TRUE(base.ok());

  // Garbage where the checkpoint should be: training must detect it via
  // the CRC, warn, and produce exactly the fresh-start result.
  const std::string path =
      core::pipeline::CheckpointPath(ckpt.str(), "F-GMM");
  {
    std::FILE* f = std::fopen(path.c_str(), "wb");
    ASSERT_NE(f, nullptr);
    std::fputs("FMLCKPT1 but then noise that no CRC will bless", f);
    std::fclose(f);
  }
  opt.checkpoint_dir = ckpt.str();
  pool.Clear();
  core::TrainReport report;
  auto r =
      core::TrainGmm(rel, opt, core::Algorithm::kFactorized, &pool, &report);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(report.final_objective, base_report.final_objective);
  EXPECT_EQ(gmm::GmmParams::MaxAbsDiff(base.value(), r.value()), 0.0);
  EXPECT_EQ(report.iterations, 2);
}

TEST(CheckpointTest, OptionValidationRejectsBadCombos) {
  TempDir dir;
  BufferPool pool(512);
  auto rel =
      std::move(GenerateSynthetic(Spec(dir.str(), false), &pool)).value();
  gmm::GmmOptions opt;
  opt.num_components = 3;
  opt.max_iters = 1;
  opt.batch_rows = 256;
  opt.temp_dir = dir.str();

  opt.delta_encoding = "gzip";
  core::TrainReport report;
  auto r = core::TrainGmm(rel, opt, core::Algorithm::kFactorized, &pool,
                          &report);
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.status().ToString().find("delta-encoding"), std::string::npos)
      << r.status().ToString();

  opt.delta_encoding = "dense";
  opt.checkpoint_every = 2;  // without a checkpoint dir
  r = core::TrainGmm(rel, opt, core::Algorithm::kFactorized, &pool, &report);
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.status().ToString().find("--checkpoint-dir"), std::string::npos)
      << r.status().ToString();
}

// --------------------------------------- slot memory + sparse deltas

TEST(ShardParityTest, SparseDeltasBitIdenticalToDenseAndNoLarger) {
  TempDir dir;
  BufferPool pool(512);
  auto rel =
      std::move(GenerateSynthetic(Spec(dir.str(), false), &pool)).value();
  gmm::GmmOptions opt;
  opt.num_components = 3;
  opt.max_iters = 2;
  opt.batch_rows = 256;
  opt.temp_dir = dir.str();
  opt.threads = 2;
  opt.shards = 3;
  opt.morsel_rows = 400;

  opt.delta_encoding = "dense";
  pool.Clear();
  core::TrainReport dense_report;
  auto dense = core::TrainGmm(rel, opt, core::Algorithm::kFactorized, &pool,
                              &dense_report);
  ASSERT_TRUE(dense.ok()) << dense.status().ToString();

  opt.delta_encoding = "sparse";
  pool.Clear();
  core::TrainReport sparse_report;
  auto sparse = core::TrainGmm(rel, opt, core::Algorithm::kFactorized, &pool,
                               &sparse_report);
  ASSERT_TRUE(sparse.ok()) << sparse.status().ToString();

  EXPECT_EQ(sparse_report.final_objective, dense_report.final_objective);
  EXPECT_EQ(gmm::GmmParams::MaxAbsDiff(dense.value(), sparse.value()), 0.0);
  EXPECT_EQ(sparse_report.ops.mults, dense_report.ops.mults);
  EXPECT_EQ(sparse_report.ops.adds, dense_report.ops.adds);
  const double dense_wire = MetricValue(dense_report, "pipeline.delta_bytes");
  const double sparse_wire =
      MetricValue(sparse_report, "pipeline.delta_bytes");
  EXPECT_GT(dense_wire, 0.0);
  EXPECT_GT(sparse_wire, 0.0);
  EXPECT_LE(sparse_wire, dense_wire);
}

TEST(SlotMemoryTest, RidScopedSlotsStayFarBelowFullDomainSizing) {
  // The bug this PR fixes: per-chunk slots used to allocate the full
  // table-0 domain each, O(chunk_count x k x n_R) total. Rid-scoped
  // slots partition the domain instead, so the measured bytes must sit
  // well under chunk_count x (one full-domain slot) once the chunk count
  // is large — and the chunked result stays bit-identical to itself
  // across thread counts (the existing parity suites pin that).
  //
  // A wide attribute table makes the k x n_R term the dominant slot
  // cost; with the shared 40-rid spec the fixed per-slot state drowns
  // out the rid-scoped savings and the ratio below is meaningless.
  TempDir dir;
  BufferPool pool(512);
  data::SyntheticSpec spec = Spec(dir.str(), false);
  spec.attrs = {data::AttributeSpec{600, 5}};
  auto rel = std::move(GenerateSynthetic(spec, &pool)).value();
  gmm::GmmOptions opt;
  opt.num_components = 3;
  opt.max_iters = 1;
  opt.batch_rows = 256;
  opt.temp_dir = dir.str();
  opt.threads = 1;

  pool.Clear();
  core::TrainReport serial_report;
  auto serial = core::TrainGmm(rel, opt, core::Algorithm::kFactorized, &pool,
                               &serial_report);
  ASSERT_TRUE(serial.ok());
  const double one_slot = MetricValue(serial_report, "pipeline.slot_bytes");
  ASSERT_GT(one_slot, 0.0);

  opt.morsel_rows = 100;  // 3000 rows -> 30 chunks
  pool.Clear();
  core::TrainReport chunked_report;
  auto chunked = core::TrainGmm(rel, opt, core::Algorithm::kFactorized,
                                &pool, &chunked_report);
  ASSERT_TRUE(chunked.ok());
  const double chunked_bytes =
      MetricValue(chunked_report, "pipeline.slot_bytes");
  ASSERT_GT(chunked_bytes, 0.0);
  const double full_domain_cost = 30.0 * one_slot;
  EXPECT_LT(chunked_bytes, 0.25 * full_domain_cost)
      << "slot memory grew like the pre-fix full-domain sizing "
      << "(chunked " << chunked_bytes << " vs legacy " << full_domain_cost
      << ")";
}

}  // namespace
}  // namespace factorml

// net/ tests: the frame codec and socket layer the process shard backend
// stands on. The codec promises are adversarial — any byte split
// (including mid-header) reassembles, bad magic and oversized lengths are
// rejected with a *sticky* error before any allocation, and a truncated
// stream never yields a frame. The socket tests pin the partial-I/O
// contract: a payload far larger than SO_SNDBUF crosses a socketpair
// intact because SendAll/RecvFrame loop on short writes and reads.

#include <sys/socket.h>
#include <unistd.h>

#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "gtest/gtest.h"
#include "net/frame.h"
#include "net/socket.h"
#include "net/wire.h"
#include "test_util.h"

namespace factorml::net {
namespace {

using factorml::testing::TempDir;

TEST(FrameCodecTest, RoundTripSingleFrame) {
  const std::string wire = EncodeFrame(7, "hello shard");
  ASSERT_EQ(wire.size(), kFrameHeaderBytes + 11);
  EXPECT_EQ(wire.substr(0, 4), "FMLF");

  FrameDecoder dec;
  dec.Feed(wire.data(), wire.size());
  Frame f;
  bool got = false;
  ASSERT_TRUE(dec.Next(&f, &got).ok());
  ASSERT_TRUE(got);
  EXPECT_EQ(f.type, 7u);
  EXPECT_EQ(f.payload, "hello shard");
  ASSERT_TRUE(dec.Next(&f, &got).ok());
  EXPECT_FALSE(got);
  EXPECT_EQ(dec.buffered(), 0u);
}

TEST(FrameCodecTest, RoundTripEmptyPayload) {
  const std::string wire = EncodeFrame(3, "");
  FrameDecoder dec;
  dec.Feed(wire.data(), wire.size());
  Frame f;
  bool got = false;
  ASSERT_TRUE(dec.Next(&f, &got).ok());
  ASSERT_TRUE(got);
  EXPECT_EQ(f.type, 3u);
  EXPECT_TRUE(f.payload.empty());
}

TEST(FrameCodecTest, ByteAtATimeReassembles) {
  // Every possible split point, including mid-magic and mid-length: feed
  // one byte at a time and check the frame only appears at the last byte.
  const std::string wire = EncodeFrame(42, "abcdefgh");
  FrameDecoder dec;
  Frame f;
  bool got = false;
  for (size_t i = 0; i + 1 < wire.size(); ++i) {
    dec.Feed(wire.data() + i, 1);
    ASSERT_TRUE(dec.Next(&f, &got).ok()) << "at byte " << i;
    ASSERT_FALSE(got) << "frame appeared early at byte " << i;
  }
  dec.Feed(wire.data() + wire.size() - 1, 1);
  ASSERT_TRUE(dec.Next(&f, &got).ok());
  ASSERT_TRUE(got);
  EXPECT_EQ(f.type, 42u);
  EXPECT_EQ(f.payload, "abcdefgh");
}

TEST(FrameCodecTest, BackToBackFramesInOneFeed) {
  const std::string wire =
      EncodeFrame(1, "first") + EncodeFrame(2, "second") + EncodeFrame(3, "");
  FrameDecoder dec;
  dec.Feed(wire.data(), wire.size());
  Frame f;
  bool got = false;
  ASSERT_TRUE(dec.Next(&f, &got).ok());
  ASSERT_TRUE(got);
  EXPECT_EQ(f.type, 1u);
  EXPECT_EQ(f.payload, "first");
  ASSERT_TRUE(dec.Next(&f, &got).ok());
  ASSERT_TRUE(got);
  EXPECT_EQ(f.type, 2u);
  EXPECT_EQ(f.payload, "second");
  ASSERT_TRUE(dec.Next(&f, &got).ok());
  ASSERT_TRUE(got);
  EXPECT_EQ(f.type, 3u);
  EXPECT_TRUE(f.payload.empty());
  ASSERT_TRUE(dec.Next(&f, &got).ok());
  EXPECT_FALSE(got);
}

TEST(FrameCodecTest, TruncatedStreamNeverYields) {
  const std::string wire = EncodeFrame(9, "truncated payload");
  FrameDecoder dec;
  dec.Feed(wire.data(), wire.size() - 1);  // all but the last byte
  Frame f;
  bool got = true;
  ASSERT_TRUE(dec.Next(&f, &got).ok());
  EXPECT_FALSE(got);
  EXPECT_GT(dec.buffered(), 0u);
}

TEST(FrameCodecTest, BadMagicIsStickyError) {
  std::string wire = EncodeFrame(5, "payload");
  wire[1] ^= 0x40;  // flip a bit in the magic
  FrameDecoder dec;
  dec.Feed(wire.data(), wire.size());
  Frame f;
  bool got = false;
  const Status st = dec.Next(&f, &got);
  ASSERT_FALSE(st.ok());
  EXPECT_FALSE(got);

  // Sticky: valid bytes fed afterwards do not resynchronize the stream
  // (framing has no resync point) and the same error keeps coming back.
  const std::string fresh = EncodeFrame(6, "clean");
  dec.Feed(fresh.data(), fresh.size());
  const Status again = dec.Next(&f, &got);
  ASSERT_FALSE(again.ok());
  EXPECT_FALSE(got);
  EXPECT_EQ(st.ToString(), again.ToString());
}

TEST(FrameCodecTest, OversizedLengthRejectedBeforeAllocation) {
  // Hand-build a header whose length field claims far more than
  // kMaxFramePayload. The decoder must reject it from the 16 header bytes
  // alone — if it tried to allocate first, this test would OOM.
  std::string header = "FMLF";
  const uint32_t type = 1;
  const uint64_t huge = kMaxFramePayload + 1;
  header.append(reinterpret_cast<const char*>(&type), sizeof(type));
  header.append(reinterpret_cast<const char*>(&huge), sizeof(huge));
  ASSERT_EQ(header.size(), kFrameHeaderBytes);

  FrameDecoder dec;
  dec.Feed(header.data(), header.size());
  Frame f;
  bool got = false;
  const Status st = dec.Next(&f, &got);
  ASSERT_FALSE(st.ok());
  EXPECT_FALSE(got);
}

TEST(FrameCodecTest, MaxPayloadBoundaryAccepted) {
  // Exactly kMaxFramePayload must still be considered well-formed: feed
  // just the header and check the decoder asks for more bytes instead of
  // erroring (actually materializing 1 GiB is not worth the test time).
  std::string header = "FMLF";
  const uint32_t type = 2;
  const uint64_t len = kMaxFramePayload;
  header.append(reinterpret_cast<const char*>(&type), sizeof(type));
  header.append(reinterpret_cast<const char*>(&len), sizeof(len));
  FrameDecoder dec;
  dec.Feed(header.data(), header.size());
  Frame f;
  bool got = true;
  ASSERT_TRUE(dec.Next(&f, &got).ok());
  EXPECT_FALSE(got);
}

TEST(WireTest, WriterReaderRoundTrip) {
  ByteWriter w;
  w.U8(0xAB);
  w.U32(0xDEADBEEF);
  w.U64(0x0102030405060708ull);
  w.I64(-42);
  w.F64(3.14159265358979);
  w.Str(std::string("a string with \0 inside", 22));  // embedded NUL survives
  const std::string blob = w.Take();

  ByteReader r(blob);
  uint8_t u8 = 0;
  uint32_t u32 = 0;
  uint64_t u64 = 0;
  int64_t i64 = 0;
  double f64 = 0;
  std::string s;
  ASSERT_TRUE(r.U8(&u8).ok());
  ASSERT_TRUE(r.U32(&u32).ok());
  ASSERT_TRUE(r.U64(&u64).ok());
  ASSERT_TRUE(r.I64(&i64).ok());
  ASSERT_TRUE(r.F64(&f64).ok());
  ASSERT_TRUE(r.Str(&s).ok());
  EXPECT_EQ(u8, 0xAB);
  EXPECT_EQ(u32, 0xDEADBEEFu);
  EXPECT_EQ(u64, 0x0102030405060708ull);
  EXPECT_EQ(i64, -42);
  EXPECT_EQ(f64, 3.14159265358979);
  EXPECT_EQ(s.size(), 22u);
  EXPECT_TRUE(r.AtEnd());
}

TEST(WireTest, TruncatedScalarIsBoundedError) {
  ByteWriter w;
  w.U32(7);
  const std::string blob = w.Take();
  ByteReader r(blob);
  uint64_t v = 0;
  const Status st = r.U64(&v);  // asks for 8 bytes, only 4 present
  ASSERT_FALSE(st.ok());
  EXPECT_NE(st.ToString().find("truncated"), std::string::npos);
}

TEST(WireTest, StringLengthBeyondPayloadRejected) {
  // A string whose length prefix claims more bytes than remain: the
  // reader must fail, not read past the buffer. The length is near
  // UINT64_MAX so an unchecked `off + len` would also wrap.
  ByteWriter w;
  w.U64(~0ull - 8);
  w.U32(0);
  const std::string blob = w.Take();
  ByteReader r(blob);
  std::string s;
  const Status st = r.Str(&s);
  ASSERT_FALSE(st.ok());
  EXPECT_TRUE(s.empty());
}

TEST(SocketTest, LargePayloadCrossesSmallSendBuffer) {
  // Partial-I/O contract: shrink both socket buffers to a few KB, push a
  // multi-megabyte frame through, and read it back on a thread. SendAll
  // must loop on short writes; RecvFrame must reassemble across hundreds
  // of reads. The payload is patterned so corruption shows a position.
  int fds[2];
  ASSERT_EQ(socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
  const int small = 4096;
  setsockopt(fds[0], SOL_SOCKET, SO_SNDBUF, &small, sizeof(small));
  setsockopt(fds[1], SOL_SOCKET, SO_RCVBUF, &small, sizeof(small));

  std::string payload(4 << 20, '\0');
  for (size_t i = 0; i < payload.size(); ++i) {
    payload[i] = static_cast<char>((i * 131) & 0xFF);
  }

  FrameConn sender(fds[0]);
  FrameConn receiver(fds[1]);
  Frame f;
  Status recv_status;
  std::thread reader(
      [&] { recv_status = receiver.RecvFrame(&f, /*timeout_ms=*/30000); });
  ASSERT_TRUE(sender.SendFrame(11, payload).ok());
  reader.join();
  ASSERT_TRUE(recv_status.ok()) << recv_status.ToString();
  EXPECT_EQ(f.type, 11u);
  ASSERT_EQ(f.payload.size(), payload.size());
  EXPECT_EQ(f.payload, payload);
}

TEST(SocketTest, PeerCloseSurfacesAsEof) {
  int fds[2];
  ASSERT_EQ(socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
  FrameConn a(fds[0]);
  FrameConn b(fds[1]);
  a.Close();
  Frame f;
  const Status st = b.RecvFrame(&f, /*timeout_ms=*/5000);
  ASSERT_FALSE(st.ok());
  EXPECT_TRUE(b.eof());
}

TEST(SocketTest, RecvFrameTimesOut) {
  int fds[2];
  ASSERT_EQ(socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
  FrameConn a(fds[0]);
  FrameConn b(fds[1]);
  Frame f;
  const Status st = b.RecvFrame(&f, /*timeout_ms=*/50);
  ASSERT_FALSE(st.ok());
  EXPECT_NE(st.ToString().find("timeout"), std::string::npos)
      << st.ToString();
  EXPECT_FALSE(b.eof());  // the peer is alive, only slow
}

TEST(SocketTest, UnixListenerAcceptAndExchange) {
  TempDir dir;
  Listener listener;
  ASSERT_TRUE(listener.ListenUnix(dir.str() + "/sock").ok());
  ASSERT_EQ(listener.address().rfind("unix:", 0), 0u);

  FrameConn client;
  Status connect_status;
  std::thread dialer(
      [&] { connect_status = ConnectAddress(listener.address(), &client); });
  FrameConn served;
  ASSERT_TRUE(listener.Accept(&served, /*timeout_ms=*/5000).ok());
  dialer.join();
  ASSERT_TRUE(connect_status.ok()) << connect_status.ToString();

  ASSERT_TRUE(client.SendFrame(21, "ping").ok());
  Frame f;
  ASSERT_TRUE(served.RecvFrame(&f, 5000).ok());
  EXPECT_EQ(f.type, 21u);
  EXPECT_EQ(f.payload, "ping");
  ASSERT_TRUE(served.SendFrame(22, "pong").ok());
  ASSERT_TRUE(client.RecvFrame(&f, 5000).ok());
  EXPECT_EQ(f.type, 22u);
  EXPECT_EQ(f.payload, "pong");
}

TEST(SocketTest, TcpLoopbackListenerAcceptAndExchange) {
  Listener listener;
  ASSERT_TRUE(listener.ListenTcpLoopback().ok());
  ASSERT_EQ(listener.address().rfind("tcp:127.0.0.1:", 0), 0u);

  FrameConn client;
  Status connect_status;
  std::thread dialer(
      [&] { connect_status = ConnectAddress(listener.address(), &client); });
  FrameConn served;
  ASSERT_TRUE(listener.Accept(&served, /*timeout_ms=*/5000).ok());
  dialer.join();
  ASSERT_TRUE(connect_status.ok()) << connect_status.ToString();

  ASSERT_TRUE(served.SendFrame(31, "over tcp").ok());
  Frame f;
  ASSERT_TRUE(client.RecvFrame(&f, 5000).ok());
  EXPECT_EQ(f.type, 31u);
  EXPECT_EQ(f.payload, "over tcp");
}

TEST(SocketTest, PollReadableReportsTheRightConnection) {
  int ab[2];
  int cd[2];
  ASSERT_EQ(socketpair(AF_UNIX, SOCK_STREAM, 0, ab), 0);
  ASSERT_EQ(socketpair(AF_UNIX, SOCK_STREAM, 0, cd), 0);
  FrameConn a(ab[0]), b(ab[1]);
  FrameConn c(cd[0]), d(cd[1]);

  std::vector<FrameConn*> watched = {&b, &d};
  std::vector<size_t> ready;

  // Nothing pending: times out with an empty ready set.
  ASSERT_TRUE(PollReadable(watched, /*timeout_ms=*/50, &ready).ok());
  EXPECT_TRUE(ready.empty());

  // Only connection d has data.
  ASSERT_TRUE(c.SendFrame(1, "wake d").ok());
  ASSERT_TRUE(PollReadable(watched, /*timeout_ms=*/5000, &ready).ok());
  ASSERT_EQ(ready.size(), 1u);
  EXPECT_EQ(ready[0], 1u);

  // ReadAvailable + NextFrame drains it without blocking.
  ASSERT_TRUE(d.ReadAvailable().ok());
  Frame f;
  bool got = false;
  ASSERT_TRUE(d.NextFrame(&f, &got).ok());
  ASSERT_TRUE(got);
  EXPECT_EQ(f.payload, "wake d");
}

}  // namespace
}  // namespace factorml::net

#include <cmath>
#include <vector>

#include "gmm/gmm_model.h"
#include "gmm/inference.h"
#include "gtest/gtest.h"
#include "la/matrix.h"
#include "test_util.h"

namespace factorml::gmm {
namespace {

/// A well-separated 2-component, 2-d mixture for hand-checkable results.
GmmParams TwoComponentMixture() {
  la::Matrix seeds(2, 2);
  seeds(0, 0) = -5.0;
  seeds(0, 1) = -5.0;
  seeds(1, 0) = 5.0;
  seeds(1, 1) = 5.0;
  GmmParams p = GmmParams::Init(seeds, 1.0);  // Sigma = I
  p.pi = {0.3, 0.7};
  return p;
}

TEST(InferenceTest, LogDensityMatchesClosedForm) {
  GmmParams p = TwoComponentMixture();
  auto density = std::move(GmmDensity::From(p)).value();
  // At x = (5,5): component 1 dominates; N(x|mu1, I) = 1/(2 pi).
  const double x[] = {5.0, 5.0};
  const double expected_near =
      std::log(0.7 / (2.0 * M_PI));  // component 0 is ~e^-100, negligible
  EXPECT_NEAR(MixtureLogDensity(density, p.mu, x), expected_near, 1e-6);
}

TEST(InferenceTest, PosteriorSumsToOneAndPicksNearComponent) {
  GmmParams p = TwoComponentMixture();
  auto density = std::move(GmmDensity::From(p)).value();
  const double x[] = {4.5, 5.5};
  double gamma[2];
  PosteriorResponsibilities(density, p.mu, x, gamma);
  EXPECT_NEAR(gamma[0] + gamma[1], 1.0, 1e-12);
  EXPECT_GT(gamma[1], 0.999);
  EXPECT_EQ(MostLikelyComponent(density, p.mu, x), 1u);
  const double y[] = {-5.0, -4.0};
  EXPECT_EQ(MostLikelyComponent(density, p.mu, y), 0u);
}

TEST(InferenceTest, MidpointPosteriorFollowsMixingWeights) {
  GmmParams p = TwoComponentMixture();
  auto density = std::move(GmmDensity::From(p)).value();
  // The midpoint is equidistant, so the posterior ratio equals pi1/pi0.
  const double x[] = {0.0, 0.0};
  double gamma[2];
  PosteriorResponsibilities(density, p.mu, x, gamma);
  EXPECT_NEAR(gamma[1] / gamma[0], 0.7 / 0.3, 1e-9);
}

TEST(InferenceTest, SamplesMatchMixtureMoments) {
  GmmParams p = TwoComponentMixture();
  auto samples = std::move(SampleFromMixture(p, 60000, /*seed=*/5)).value();
  ASSERT_EQ(samples.rows(), 60000u);
  ASSERT_EQ(samples.cols(), 2u);
  // E[x] = 0.3*(-5) + 0.7*5 = 2 in both dims.
  double sum0 = 0.0, sum1 = 0.0;
  for (size_t i = 0; i < samples.rows(); ++i) {
    sum0 += samples(i, 0);
    sum1 += samples(i, 1);
  }
  EXPECT_NEAR(sum0 / 60000.0, 2.0, 0.1);
  EXPECT_NEAR(sum1 / 60000.0, 2.0, 0.1);
  // Roughly 70% of points land near (5,5).
  int near_pos = 0;
  for (size_t i = 0; i < samples.rows(); ++i) {
    if (samples(i, 0) > 0.0) ++near_pos;
  }
  EXPECT_NEAR(static_cast<double>(near_pos) / 60000.0, 0.7, 0.02);
}

TEST(InferenceTest, SamplingDeterministicPerSeed) {
  GmmParams p = TwoComponentMixture();
  auto a = std::move(SampleFromMixture(p, 100, 9)).value();
  auto b = std::move(SampleFromMixture(p, 100, 9)).value();
  EXPECT_DOUBLE_EQ(la::Matrix::MaxAbsDiff(a, b), 0.0);
}

TEST(InferenceTest, MeanLogDensityHigherForInDistributionData) {
  GmmParams p = TwoComponentMixture();
  auto in_dist = std::move(SampleFromMixture(p, 2000, 11)).value();
  la::Matrix far(2000, 2);
  for (size_t i = 0; i < far.rows(); ++i) {
    far(i, 0) = 50.0;
    far(i, 1) = -50.0;
  }
  const double ll_in = std::move(MeanLogDensity(p, in_dist)).value();
  const double ll_far = std::move(MeanLogDensity(p, far)).value();
  EXPECT_GT(ll_in, ll_far + 100.0);
}

TEST(InferenceTest, MeanLogDensityRejectsShapeMismatch) {
  GmmParams p = TwoComponentMixture();
  la::Matrix wrong(3, 5);
  EXPECT_FALSE(MeanLogDensity(p, wrong).ok());
  la::Matrix empty(0, 2);
  EXPECT_FALSE(MeanLogDensity(p, empty).ok());
}

}  // namespace
}  // namespace factorml::gmm

#include <fstream>
#include <string>

#include "data/csv.h"
#include "data/synthetic.h"
#include "gtest/gtest.h"
#include "storage/buffer_pool.h"
#include "test_util.h"

namespace factorml::data {
namespace {

using factorml::testing::TempDir;
using storage::BufferPool;

void WriteFile(const std::string& path, const std::string& content) {
  std::ofstream out(path);
  out << content;
}

TEST(CsvTest, ImportBasic) {
  TempDir dir;
  WriteFile(dir.str() + "/in.csv",
            "id,fk,a,b\n"
            "0,10,1.5,-2\n"
            "1,11,2.5,0.25\n"
            "2,12,3.5,1e3\n");
  CsvImportOptions opt;
  opt.num_keys = 2;
  auto t = std::move(ImportCsv(dir.str() + "/in.csv", dir.str() + "/t.fml",
                               opt))
               .value();
  EXPECT_EQ(t.num_rows(), 3);
  EXPECT_EQ(t.schema().num_keys, 2u);
  EXPECT_EQ(t.schema().num_feats, 2u);
  BufferPool pool(16);
  storage::RowBatch batch;
  FML_ASSERT_OK(t.ReadRows(&pool, 0, 3, &batch));
  EXPECT_EQ(batch.KeysOf(1)[1], 11);
  EXPECT_DOUBLE_EQ(batch.feats(2, 1), 1000.0);
}

TEST(CsvTest, ImportWithoutHeader) {
  TempDir dir;
  WriteFile(dir.str() + "/in.csv", "0,1.0\n1,2.0\n");
  CsvImportOptions opt;
  opt.num_keys = 1;
  opt.has_header = false;
  auto t = std::move(ImportCsv(dir.str() + "/in.csv", dir.str() + "/t.fml",
                               opt))
               .value();
  EXPECT_EQ(t.num_rows(), 2);
}

TEST(CsvTest, BadRowFailsByDefault) {
  TempDir dir;
  WriteFile(dir.str() + "/in.csv", "id,a\n0,1.0\nnot_an_int,2.0\n");
  CsvImportOptions opt;
  auto r = ImportCsv(dir.str() + "/in.csv", dir.str() + "/t.fml", opt);
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
}

TEST(CsvTest, BadRowSkippedWhenRequested) {
  TempDir dir;
  WriteFile(dir.str() + "/in.csv",
            "id,a\n0,1.0\nbad,2.0\n1,3.0\n2\n3,4.0\n");
  CsvImportOptions opt;
  opt.skip_bad_rows = true;
  auto t = std::move(ImportCsv(dir.str() + "/in.csv", dir.str() + "/t.fml",
                               opt))
               .value();
  EXPECT_EQ(t.num_rows(), 3);  // rows 0, 1, 3
}

TEST(CsvTest, MissingFileAndEmptyFileFail) {
  TempDir dir;
  CsvImportOptions opt;
  EXPECT_EQ(ImportCsv(dir.str() + "/nope.csv", dir.str() + "/t.fml", opt)
                .status()
                .code(),
            StatusCode::kIoError);
  WriteFile(dir.str() + "/empty.csv", "id,a\n");
  EXPECT_EQ(ImportCsv(dir.str() + "/empty.csv", dir.str() + "/t.fml", opt)
                .status()
                .code(),
            StatusCode::kInvalidArgument);
}

TEST(CsvTest, NoFeatureColumnsRejected) {
  TempDir dir;
  WriteFile(dir.str() + "/in.csv", "id\n0\n1\n");
  CsvImportOptions opt;
  EXPECT_FALSE(
      ImportCsv(dir.str() + "/in.csv", dir.str() + "/t.fml", opt).ok());
}

TEST(CsvTest, RoundTripPreservesValues) {
  TempDir dir;
  BufferPool pool(256);
  // Generate a table, export it, re-import it, compare.
  SyntheticSpec spec;
  spec.dir = dir.str();
  spec.s_rows = 200;
  spec.s_feats = 3;
  spec.attrs = {AttributeSpec{10, 2}};
  spec.seed = 5;
  auto rel = std::move(GenerateSynthetic(spec, &pool)).value();

  FML_ASSERT_OK(ExportCsv(rel.s, &pool, dir.str() + "/s.csv"));
  CsvImportOptions opt;
  opt.num_keys = rel.s.schema().num_keys;
  auto t2 = std::move(ImportCsv(dir.str() + "/s.csv",
                                dir.str() + "/s_round.fml", opt))
                .value();
  ASSERT_EQ(t2.num_rows(), rel.s.num_rows());
  ASSERT_TRUE(t2.schema() == rel.s.schema());
  storage::RowBatch a, b;
  FML_ASSERT_OK(rel.s.ReadRows(&pool, 0, 200, &a));
  FML_ASSERT_OK(t2.ReadRows(&pool, 0, 200, &b));
  for (size_t r = 0; r < 200; ++r) {
    for (size_t j = 0; j < a.num_keys; ++j) {
      EXPECT_EQ(a.KeysOf(r)[j], b.KeysOf(r)[j]);
    }
    for (size_t j = 0; j < rel.s.schema().num_feats; ++j) {
      // %.17g round-trips doubles exactly.
      EXPECT_DOUBLE_EQ(a.feats(r, j), b.feats(r, j));
    }
  }
}

TEST(CsvTest, CustomDelimiter) {
  TempDir dir;
  WriteFile(dir.str() + "/in.tsv", "id;a;b\n0;1.0;2.0\n");
  CsvImportOptions opt;
  opt.delimiter = ';';
  auto t = std::move(ImportCsv(dir.str() + "/in.tsv", dir.str() + "/t.fml",
                               opt))
               .value();
  EXPECT_EQ(t.num_rows(), 1);
  EXPECT_EQ(t.schema().num_feats, 2u);
}

}  // namespace
}  // namespace factorml::data

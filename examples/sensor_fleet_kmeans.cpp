// Sensor-fleet clustering over a normalized schema: Readings(ReadingID,
// ..., DeviceID, temperature, vibration, load) joins Devices(DeviceID,
// model attributes...). Operations wants readings clustered into regimes
// *including* device attributes — and each device's attributes repeat
// across its thousands of readings. Squared Euclidean distance is
// block-separable over the join, so F-KMEANS caches one per-device
// distance scalar per centroid per pass and reuses it for every matching
// reading: the paper's centered-cache idea with no cross terms at all.
//
// This model family was added as ONE ModelProgram file
// (src/kmeans/kmeans_program.cc); the M/S/F drivers, morsel parallelism
// and measurement come from core/pipeline for free.
//
// Build & run:  ./build/example_sensor_fleet_kmeans [--readings=N]

#include <cstdio>
#include <filesystem>

#include "common/flags.h"
#include "core/factorml.h"

namespace fml = factorml;

int main(int argc, char** argv) {
  fml::ArgParser args(argc, argv);
  const int64_t num_readings = args.GetInt("readings", 80000);
  const int64_t num_devices = args.GetInt("devices", 400);
  fml::exec::SetDefaultThreads(args.GetThreads(1));

  const std::string dir = "sensor_data";
  // Only clean up on exit if this run created the directory.
  const bool created = std::filesystem::create_directories(dir);
  fml::storage::BufferPool pool(2048);

  fml::data::SyntheticSpec spec;
  spec.dir = dir;
  spec.name = "sensors";
  spec.s_rows = num_readings;
  spec.s_feats = 3;                                       // per-reading
  spec.attrs = {fml::data::AttributeSpec{num_devices, 5}};  // per-device
  spec.clusters = 4;  // ground-truth operating regimes
  spec.seed = 99;
  auto rel_or = fml::data::GenerateSynthetic(spec, &pool);
  if (!rel_or.ok()) {
    std::fprintf(stderr, "%s\n", rel_or.status().ToString().c_str());
    return 1;
  }
  auto& rel = rel_or.value();
  std::printf("Readings: %lld rows x %zu features; Devices: %lld rows x %zu "
              "features (~%lld readings/device)\n\n",
              static_cast<long long>(rel.s.num_rows()), rel.ds(),
              static_cast<long long>(rel.attrs[0].num_rows()), rel.dr(0),
              static_cast<long long>(num_readings / num_devices));

  fml::kmeans::KmeansOptions opt;
  opt.num_clusters = 4;
  opt.max_iters = 8;
  opt.tol = 1e-6;
  opt.temp_dir = dir;

  fml::core::TrainReport rm, rs, rf;
  pool.Clear();  // every strategy starts cold, like the benches
  auto m = fml::core::TrainKmeans(rel, opt,
                                  fml::core::Algorithm::kMaterialized, &pool,
                                  &rm);
  pool.Clear();
  auto s = fml::core::TrainKmeans(rel, opt, fml::core::Algorithm::kStreaming,
                                  &pool, &rs);
  pool.Clear();
  auto f = fml::core::TrainKmeans(rel, opt, fml::core::Algorithm::kFactorized,
                                  &pool, &rf);
  for (const auto* r : {&m.status(), &s.status(), &f.status()}) {
    if (!r->ok()) {
      std::fprintf(stderr, "training failed: %s\n", r->ToString().c_str());
      return 1;
    }
  }

  std::printf("%s\n%s\n%s\n\n", rm.ToString().c_str(), rs.ToString().c_str(),
              rf.ToString().c_str());
  std::printf("centroid agreement (max diff M vs F): %.2e\n",
              fml::kmeans::KmeansModel::MaxAbsDiff(*m, *f));
  std::printf("factorized multiply saving: %.2fx fewer than streaming\n\n",
              static_cast<double>(rs.ops.mults) /
                  static_cast<double>(rf.ops.mults));

  std::printf("operating regimes (size, mean reading feature 0, mean device "
              "attribute 0):\n");
  for (size_t c = 0; c < f->num_clusters(); ++c) {
    std::printf("  regime %zu: n=%.0f  reading0=%.2f  device0=%.2f\n", c,
                f->counts[c], f->centroids(c, 0), f->centroids(c, rel.ds()));
  }

  if (created) std::filesystem::remove_all(dir);
  return 0;
}

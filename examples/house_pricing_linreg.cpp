// House price regression over a normalized schema: Listings(ListingID,
// ..., NeighborhoodID, Price, Sqft, Rooms) joins Neighborhoods with school
// scores, transit access and density. A price model wants neighborhood
// attributes for every listing — and every neighborhood's attributes
// repeat across its hundreds of listings. Ridge regression has a closed
// form from the Gram matrix X^T X and cofactor X^T y, and both factorize
// over the join: this example trains with all three strategies and shows
// the factorized one computing identical coefficients for a fraction of
// the arithmetic.
//
// This model family was added as ONE ModelProgram file
// (src/linreg/linreg_program.cc); the M/S/F drivers, morsel parallelism
// and measurement come from core/pipeline for free.
//
// Build & run:  ./build/example_house_pricing_linreg [--listings=N]

#include <cstdio>
#include <filesystem>

#include "common/flags.h"
#include "core/factorml.h"

namespace fml = factorml;

int main(int argc, char** argv) {
  fml::ArgParser args(argc, argv);
  const int64_t num_listings = args.GetInt("listings", 60000);
  const int64_t num_hoods = args.GetInt("neighborhoods", 250);
  fml::exec::SetDefaultThreads(args.GetThreads(1));

  const std::string dir = "housing_data";
  // Only clean up on exit if this run created the directory.
  const bool created = std::filesystem::create_directories(dir);
  fml::storage::BufferPool pool(2048);

  // Listings carry 4 per-home features; neighborhoods carry 8 attributes.
  // with_target makes the generator emit a price-like response that
  // depends on the joined features.
  fml::data::SyntheticSpec spec;
  spec.dir = dir;
  spec.name = "housing";
  spec.s_rows = num_listings;
  spec.s_feats = 4;
  spec.attrs = {fml::data::AttributeSpec{num_hoods, 8}};
  spec.with_target = true;
  spec.seed = 7;
  auto rel_or = fml::data::GenerateSynthetic(spec, &pool);
  if (!rel_or.ok()) {
    std::fprintf(stderr, "%s\n", rel_or.status().ToString().c_str());
    return 1;
  }
  auto& rel = rel_or.value();
  std::printf("Listings: %lld rows x %zu features; Neighborhoods: %lld rows "
              "x %zu features\n\n",
              static_cast<long long>(rel.s.num_rows()), rel.ds(),
              static_cast<long long>(rel.attrs[0].num_rows()), rel.dr(0));

  fml::linreg::LinregOptions opt;
  opt.l2 = 1e-3;
  opt.temp_dir = dir;

  fml::core::TrainReport rm, rs, rf;
  pool.Clear();  // every strategy starts cold, like the benches
  auto m = fml::core::TrainLinreg(rel, opt,
                                  fml::core::Algorithm::kMaterialized, &pool,
                                  &rm);
  pool.Clear();
  auto s = fml::core::TrainLinreg(rel, opt, fml::core::Algorithm::kStreaming,
                                  &pool, &rs);
  pool.Clear();
  auto f = fml::core::TrainLinreg(rel, opt, fml::core::Algorithm::kFactorized,
                                  &pool, &rf);
  for (const auto* r : {&m.status(), &s.status(), &f.status()}) {
    if (!r->ok()) {
      std::fprintf(stderr, "training failed: %s\n", r->ToString().c_str());
      return 1;
    }
  }

  std::printf("%s\n%s\n%s\n\n", rm.ToString().c_str(), rs.ToString().c_str(),
              rf.ToString().c_str());
  std::printf("coefficient agreement (max diff M vs F): %.2e\n",
              fml::linreg::LinregModel::MaxAbsDiff(*m, *f));
  std::printf("factorized multiply saving: %.2fx fewer than streaming\n\n",
              static_cast<double>(rs.ops.mults) /
                  static_cast<double>(rf.ops.mults));

  std::printf("model (half-MSE %.4f): bias=%.4f, first listing coef=%.4f, "
              "first neighborhood coef=%.4f\n",
              rf.final_objective, f->bias, f->w[0], f->w[rel.ds()]);

  if (created) std::filesystem::remove_all(dir);
  return 0;
}

// Rating prediction over a multi-way join — the paper's Movies-3way
// workload: Ratings(SID, Y=rating, FK_user, FK_movie) joins Users(RID1,
// demographics) and Movies(RID2, genre/metadata). A rating-prediction
// network needs features from both attribute tables, so conventional
// pipelines denormalize into a table with nS x (1 + dU + dM) values;
// F-NN trains directly on the three base relations.
//
// Build & run:  ./build/examples/movie_recs_multiway [--ratings=N]

#include <cstdio>
#include <filesystem>

#include "common/flags.h"
#include "core/factorml.h"

namespace fml = factorml;

int main(int argc, char** argv) {
  fml::ArgParser args(argc, argv);
  const int64_t ratings = args.GetInt("ratings", 50000);

  const std::string dir = "movie_data";
  std::filesystem::create_directories(dir);
  fml::storage::BufferPool pool(2048);

  // Shapes follow the MovieLens-1M proportions used by the paper,
  // scaled: ~6k users with 4 demographic features, ~3.7k movies with 21
  // genre/metadata features, 1 contextual feature on the rating itself.
  fml::data::SyntheticSpec spec;
  spec.dir = dir;
  spec.name = "movies3";
  spec.s_rows = ratings;
  spec.s_feats = 1;
  spec.attrs = {fml::data::AttributeSpec{ratings / 166, 4},    // users
                fml::data::AttributeSpec{ratings / 270, 21}};  // movies
  spec.with_target = true;
  spec.seed = 99;
  auto rel_or = fml::data::GenerateSynthetic(spec, &pool);
  if (!rel_or.ok()) {
    std::fprintf(stderr, "%s\n", rel_or.status().ToString().c_str());
    return 1;
  }
  auto& rel = rel_or.value();
  std::printf("Ratings: %lld; Users: %lld x %zu; Movies: %lld x %zu "
              "(joined width d=%zu)\n\n",
              static_cast<long long>(rel.s.num_rows()),
              static_cast<long long>(rel.attrs[0].num_rows()), rel.dr(0),
              static_cast<long long>(rel.attrs[1].num_rows()), rel.dr(1),
              rel.total_dims());

  fml::nn::NnOptions opt;
  opt.hidden = {40};
  opt.epochs = 5;
  opt.learning_rate = 0.05;
  opt.shuffle = true;  // SGD with per-epoch permutation of user keys
  opt.temp_dir = dir;

  fml::core::TrainReport rm, rf;
  auto m = fml::core::TrainNn(rel, opt, fml::core::Algorithm::kMaterialized,
                              &pool, &rm);
  pool.Clear();
  auto f = fml::core::TrainNn(rel, opt, fml::core::Algorithm::kFactorized,
                              &pool, &rf);
  if (!m.ok() || !f.ok()) {
    std::fprintf(stderr, "training failed\n");
    return 1;
  }

  std::printf("%s\n%s\n\n", rm.ToString().c_str(), rf.ToString().c_str());
  std::printf("F-NN speedup over M-NN: %.2fx (and it avoided writing the "
              "%llu-page denormalized table)\n",
              rm.wall_seconds / rf.wall_seconds,
              static_cast<unsigned long long>(rm.io.pages_written));
  std::printf("model agreement: max parameter diff %.2e; final half-MSE "
              "M=%.5f F=%.5f\n",
              fml::nn::Mlp::MaxAbsDiffParams(*m, *f), rm.final_objective,
              rf.final_objective);

  std::filesystem::remove_all(dir);
  return 0;
}

// Fraud scoring over normalized banking data — another scenario from the
// paper's introduction: Transactions(SID, Y=fraud score, amount/velocity
// features, FK_merchant) joins Merchants(RID, one-hot category/region
// profile). Merchant profiles are high-dimensional sparse one-hot blocks
// (the paper's "Sparse" representation) and repeat across every
// transaction at that merchant, so the factorized first layer pays off
// heavily.
//
// Build & run:  ./build/examples/fraud_scoring_nn [--txns=N]

#include <cstdio>
#include <filesystem>

#include "common/flags.h"
#include "core/factorml.h"

namespace fml = factorml;

int main(int argc, char** argv) {
  fml::ArgParser args(argc, argv);
  const int64_t txns = args.GetInt("txns", 40000);
  const int64_t merchants = args.GetInt("merchants", 250);

  const std::string dir = "fraud_data";
  std::filesystem::create_directories(dir);
  fml::storage::BufferPool pool(2048);

  fml::data::SyntheticSpec spec;
  spec.dir = dir;
  spec.name = "fraud";
  spec.s_rows = txns;
  spec.s_feats = 8;              // transaction behaviour features
  spec.attrs = {fml::data::AttributeSpec{merchants, 64}};  // one-hot profile
  spec.with_target = true;
  spec.one_hot = true;
  spec.seed = 31;
  auto rel_or = fml::data::GenerateSynthetic(spec, &pool);
  if (!rel_or.ok()) {
    std::fprintf(stderr, "%s\n", rel_or.status().ToString().c_str());
    return 1;
  }
  auto& rel = rel_or.value();
  std::printf("Transactions: %lld x %zu; Merchants: %lld x %zu one-hot "
              "columns; ~%lld txns per merchant\n\n",
              static_cast<long long>(rel.s.num_rows()), rel.ds(),
              static_cast<long long>(rel.attrs[0].num_rows()), rel.dr(0),
              static_cast<long long>(txns / merchants));

  fml::nn::NnOptions opt;
  opt.hidden = {48};
  opt.activation = fml::nn::Activation::kRelu;
  opt.epochs = 4;
  opt.learning_rate = 0.02;
  opt.temp_dir = dir;

  fml::core::TrainReport rs, rf;
  auto s = fml::core::TrainNn(rel, opt, fml::core::Algorithm::kStreaming,
                              &pool, &rs);
  pool.Clear();
  auto f = fml::core::TrainNn(rel, opt, fml::core::Algorithm::kFactorized,
                              &pool, &rf);
  if (!s.ok() || !f.ok()) {
    std::fprintf(stderr, "training failed\n");
    return 1;
  }

  std::printf("%s\n%s\n\n", rs.ToString().c_str(), rf.ToString().c_str());
  std::printf("F-NN vs S-NN: %.2fx wall clock, %.2fx fewer multiplies "
              "(merchant profile width %zu vs %zu transaction features)\n",
              rs.wall_seconds / rf.wall_seconds,
              static_cast<double>(rs.ops.mults) /
                  static_cast<double>(rf.ops.mults),
              rel.dr(0), rel.ds());
  std::printf("model agreement: %.2e\n",
              fml::nn::Mlp::MaxAbsDiffParams(*s, *f));

  std::filesystem::remove_all(dir);
  return 0;
}

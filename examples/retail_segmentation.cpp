// Retail customer segmentation — the paper's introductory scenario:
// Orders(OrderID, ..., ItemID, Amount, Time) joins Items(ItemID, Price,
// Size, ..., Category) on a foreign key, and an analyst wants a soft
// segmentation (GMM) of order behaviour that includes item attributes.
// Normalization means each item's attributes repeat across the hundreds of
// orders that bought it — exactly the redundancy F-GMM exploits.
//
// This example builds the two relations, trains the segmentation with all
// three strategies, verifies they agree, and prints the learned segments.
//
// Build & run:  ./build/examples/retail_segmentation [--orders=N]

#include <cstdio>
#include <filesystem>

#include "common/flags.h"
#include "core/factorml.h"

namespace fml = factorml;

int main(int argc, char** argv) {
  fml::ArgParser args(argc, argv);
  const int64_t num_orders = args.GetInt("orders", 60000);
  const int64_t num_items = args.GetInt("items", 300);

  const std::string dir = "retail_data";
  std::filesystem::create_directories(dir);
  fml::storage::BufferPool pool(2048);

  // Orders carry 3 behavioural features (amount, hour-of-day, basket
  // size); Items carry 6 attributes (price, size, 4 category indicators).
  fml::data::SyntheticSpec spec;
  spec.dir = dir;
  spec.name = "retail";
  spec.s_rows = num_orders;
  spec.s_feats = 3;
  spec.attrs = {fml::data::AttributeSpec{num_items, 6}};
  spec.clusters = 4;  // ground-truth segments in the generated data
  spec.seed = 2024;
  auto rel_or = fml::data::GenerateSynthetic(spec, &pool);
  if (!rel_or.ok()) {
    std::fprintf(stderr, "%s\n", rel_or.status().ToString().c_str());
    return 1;
  }
  auto& rel = rel_or.value();
  std::printf("Orders: %lld rows x %zu features; Items: %lld rows x %zu "
              "features (each item sold ~%lld times)\n\n",
              static_cast<long long>(rel.s.num_rows()), rel.ds(),
              static_cast<long long>(rel.attrs[0].num_rows()), rel.dr(0),
              static_cast<long long>(num_orders / num_items));

  fml::gmm::GmmOptions opt;
  opt.num_components = 4;
  opt.max_iters = 6;
  opt.temp_dir = dir;

  fml::core::TrainReport rm, rs, rf;
  auto m = fml::core::TrainGmm(rel, opt, fml::core::Algorithm::kMaterialized,
                               &pool, &rm);
  pool.Clear();
  auto s = fml::core::TrainGmm(rel, opt, fml::core::Algorithm::kStreaming,
                               &pool, &rs);
  pool.Clear();
  auto f = fml::core::TrainGmm(rel, opt, fml::core::Algorithm::kFactorized,
                               &pool, &rf);
  if (!m.ok() || !s.ok() || !f.ok()) {
    std::fprintf(stderr, "training failed\n");
    return 1;
  }

  std::printf("%s\n%s\n%s\n\n", rm.ToString().c_str(), rs.ToString().c_str(),
              rf.ToString().c_str());
  std::printf("speedup of F-GMM: %.2fx over M-GMM, %.2fx over S-GMM\n",
              rm.wall_seconds / rf.wall_seconds,
              rs.wall_seconds / rf.wall_seconds);
  std::printf("segmentation agreement (max parameter diff M vs F): %.2e\n\n",
              fml::gmm::GmmParams::MaxAbsDiff(*m, *f));

  std::printf("learned segments (mixing weight, mean of order-amount "
              "feature, mean of item-price feature):\n");
  for (size_t c = 0; c < f->num_components(); ++c) {
    std::printf("  segment %zu: pi=%.3f  order.amount=%.2f  item.price=%.2f\n",
                c, f->pi[c], f->mu(c, 0), f->mu(c, rel.ds()));
  }

  std::filesystem::remove_all(dir);
  return 0;
}

// Quickstart: generate a small normalized dataset (fact table S joined to
// one attribute table R through a foreign key), then train a Gaussian
// Mixture Model and a neural network over it *without ever materializing
// the join*, using the factorized trainers from the paper. The same call
// with Algorithm::kMaterialized reproduces the conventional
// join-then-train pipeline for comparison.
//
// Build & run:  ./build/examples/quickstart

#include <cstdio>
#include <filesystem>

#include "core/factorml.h"

namespace fml = factorml;

int main() {
  const std::string dir = "quickstart_data";
  std::filesystem::create_directories(dir);

  // A buffer pool backs all table access (8 KiB pages, like PostgreSQL).
  fml::storage::BufferPool pool(1024);

  // --- 1. Create a normalized dataset: S (20k rows, 4 features + target)
  //        referencing R (200 rows, 8 features). Tuple ratio rr = 100.
  fml::data::SyntheticSpec spec;
  spec.dir = dir;
  spec.s_rows = 20000;
  spec.s_feats = 4;
  spec.attrs = {fml::data::AttributeSpec{200, 8}};
  spec.with_target = true;  // adds Y for the NN part
  spec.seed = 7;
  auto rel_or = fml::data::GenerateSynthetic(spec, &pool);
  if (!rel_or.ok()) {
    std::fprintf(stderr, "%s\n", rel_or.status().ToString().c_str());
    return 1;
  }
  fml::join::NormalizedRelations& rel = rel_or.value();
  std::printf("dataset: nS=%lld, nR=%lld, dS=%zu, dR=%zu (joined d=%zu)\n",
              static_cast<long long>(rel.s.num_rows()),
              static_cast<long long>(rel.attrs[0].num_rows()), rel.ds(),
              rel.dr(0), rel.total_dims());

  // --- 2. Train a 4-component GMM with the factorized algorithm (F-GMM)
  //        and with the baseline that materializes the join (M-GMM).
  fml::gmm::GmmOptions gopt;
  gopt.num_components = 4;
  gopt.max_iters = 5;
  gopt.temp_dir = dir;

  fml::core::TrainReport f_report, m_report;
  auto f_gmm = fml::core::TrainGmm(rel, gopt,
                                   fml::core::Algorithm::kFactorized, &pool,
                                   &f_report);
  auto m_gmm = fml::core::TrainGmm(rel, gopt,
                                   fml::core::Algorithm::kMaterialized,
                                   &pool, &m_report);
  if (!f_gmm.ok() || !m_gmm.ok()) {
    std::fprintf(stderr, "GMM training failed\n");
    return 1;
  }
  std::printf("\n%s\n%s\n", m_report.ToString().c_str(),
              f_report.ToString().c_str());
  std::printf("max parameter difference M vs F: %.2e (the decomposition is "
              "exact)\n",
              fml::gmm::GmmParams::MaxAbsDiff(*m_gmm, *f_gmm));

  // --- 3. Train a regression network (one 32-unit sigmoid hidden layer)
  //        with F-NN and report the fit.
  fml::nn::NnOptions nopt;
  nopt.hidden = {32};
  nopt.epochs = 5;
  nopt.temp_dir = dir;

  fml::core::TrainReport nn_report;
  auto mlp = fml::core::TrainNn(rel, nopt,
                                fml::core::Algorithm::kFactorized, &pool,
                                &nn_report);
  if (!mlp.ok()) {
    std::fprintf(stderr, "%s\n", mlp.status().ToString().c_str());
    return 1;
  }
  std::printf("\n%s\n", nn_report.ToString().c_str());

  std::filesystem::remove_all(dir);
  std::printf("\nquickstart complete.\n");
  return 0;
}

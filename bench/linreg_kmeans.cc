// M/S/F comparison for the two model families added on top of
// core/pipeline: closed-form ridge linear regression (factorized
// Gram/cofactor accumulation) and Lloyd's k-means (block-separable
// distance caches). The sweep mirrors Fig. 3's tuple-ratio axis: the
// factorized saving grows with rr = nS / nR, exactly as the paper's
// analysis predicts for GMM/NN — evidence that the strategies really are
// orthogonal to the model.
//
// Flags: --nr, --ds, --dr, --rr=20,50,... --k, --iters, --threads,
//        --json=PATH (record every TrainReport as JSON).

#include <cstdio>
#include <string>

#include "bench_util.h"
#include "common/flags.h"
#include "core/factorml.h"

namespace factorml::bench {
namespace {

join::NormalizedRelations Generate(const std::string& dir, int64_t n_s,
                                   int64_t n_r, size_t d_s, size_t d_r,
                                   bool target, storage::BufferPool* pool) {
  data::SyntheticSpec spec;
  spec.dir = dir;
  spec.name = "lk_" + std::to_string(n_s) + (target ? "_t" : "_c");
  spec.s_rows = n_s;
  spec.s_feats = d_s;
  spec.attrs = {data::AttributeSpec{n_r, d_r}};
  spec.with_target = target;
  spec.clusters = 4;
  spec.seed = 42;
  auto rel = data::GenerateSynthetic(spec, pool);
  if (!rel.ok()) Die(rel.status());
  return std::move(rel).value();
}

int Main(int argc, char** argv) {
  ArgParser args(argc, argv);
  ApplyCommonBenchFlags(args);
  JsonReport json("linreg_kmeans", args);
  const int64_t n_r = args.GetInt("nr", 200);
  const size_t d_s = static_cast<size_t>(args.GetInt("ds", 5));
  const size_t d_r = static_cast<size_t>(args.GetInt("dr", 15));
  const double row_scale = args.GetDouble("scale_rows", 1.0);

  BenchDir dir;
  storage::BufferPool pool(4096);

  std::printf("== New model families over a binary join (nR=%lld, dS=%zu, "
              "dR=%zu) ==\n",
              static_cast<long long>(n_r), d_s, d_r);

  std::printf("\n-- ridge linear regression: varying rr --\n");
  PrintTrioHeader("rr");
  linreg::LinregOptions lopt;
  lopt.temp_dir = dir.str();
  for (const int64_t rr : args.GetIntList("rr", {20, 50, 100, 200})) {
    const int64_t n_s = static_cast<int64_t>(rr * n_r * row_scale);
    auto rel = Generate(dir.str(), n_s, n_r, d_s, d_r, /*target=*/true,
                        &pool);
    const Trio t = RunAllStrategies(
        rel, lopt, &pool,
        [](const join::NormalizedRelations& r,
           const linreg::LinregOptions& o, core::Algorithm a,
           storage::BufferPool* p, core::TrainReport* rep) {
          return core::TrainLinreg(r, o, a, p, rep);
        },
        &linreg::LinregModel::MaxAbsDiff);
    EmitTrioRow(&json, "linreg_rr", std::to_string(rr), t);
  }

  std::printf("\n-- k-means: varying rr (K=%lld, iters=%lld) --\n",
              args.GetInt("k", 5), args.GetInt("iters", 5));
  PrintTrioHeader("rr");
  kmeans::KmeansOptions kopt;
  kopt.num_clusters = static_cast<size_t>(args.GetInt("k", 5));
  kopt.max_iters = static_cast<int>(args.GetInt("iters", 5));
  kopt.temp_dir = dir.str();
  for (const int64_t rr : args.GetIntList("rr", {20, 50, 100, 200})) {
    const int64_t n_s = static_cast<int64_t>(rr * n_r * row_scale);
    auto rel = Generate(dir.str(), n_s, n_r, d_s, d_r, /*target=*/false,
                        &pool);
    const Trio t = RunAllStrategies(
        rel, kopt, &pool,
        [](const join::NormalizedRelations& r,
           const kmeans::KmeansOptions& o, core::Algorithm a,
           storage::BufferPool* p, core::TrainReport* rep) {
          return core::TrainKmeans(r, o, a, p, rep);
        },
        &kmeans::KmeansModel::MaxAbsDiff);
    EmitTrioRow(&json, "kmeans_rr", std::to_string(rr), t);
  }
  return 0;
}

}  // namespace
}  // namespace factorml::bench

int main(int argc, char** argv) { return factorml::bench::Main(argc, argv); }

// Reproduces Table VI of the paper: GMM training time (M / S / F) on the
// real-dataset shapes — Expedia1/2, Walmart, Movies (not sparse), the
// augmented Expedia3-5, and Movies-3way. The offline substitution for the
// Hamlet-Plus data regenerates each dataset with the published
// cardinalities and feature splits (see DESIGN.md); cardinalities are
// scaled by --scale (default 0.02) so the whole table runs in minutes.

#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.h"
#include "common/flags.h"
#include "core/factorml.h"

namespace factorml::bench {
namespace {

int Main(int argc, char** argv) {
  ArgParser args(argc, argv);
  ApplyCommonBenchFlags(args);
  const double scale = args.GetDouble("scale", 0.02);
  const int iters = static_cast<int>(args.GetInt("iters", 2));
  const size_t k = static_cast<size_t>(args.GetInt("k", 5));

  BenchDir dir;
  storage::BufferPool pool(static_cast<size_t>(args.GetInt("pool_pages", 2048)));
  gmm::GmmOptions opt;
  opt.num_components = k;
  opt.max_iters = iters;
  opt.temp_dir = dir.str();

  // Table VI rows (GMM uses the Not Sparse representations).
  struct Row {
    const char* name;
    double scale_override;  // <= 0: use the global scale
  };
  const std::vector<Row> rows = {
      {"Expedia1", -1.0}, {"Expedia2", -1.0}, {"Walmart", -1.0},
      {"Movies", -1.0},   {"Expedia3", -1.0},
      // Expedia4/5 have dR = 78 / 218: quadratic EM cost, so scale harder.
      {"Expedia4", 0.008}, {"Expedia5", 0.003}, {"Movies-3way", -1.0},
  };

  std::printf("== Table VI: GMM on real-dataset shapes (scale=%.3f, K=%zu, "
              "iters=%d) ==\n",
              scale, k, iters);
  PrintTrioHeader("dataset");
  for (const auto& row : rows) {
    auto shape_or = data::FindRealShape(row.name);
    if (!shape_or.ok()) Die(shape_or.status());
    const double s = row.scale_override > 0 ? row.scale_override : scale;
    auto rel_or = data::GenerateRealShape(shape_or.value(), dir.str(), &pool,
                                          s, /*seed=*/42);
    if (!rel_or.ok()) Die(rel_or.status());
    PrintTrioRow(row.name, RunGmmAll(rel_or.value(), opt, &pool));
  }
  std::printf(
      "\npaper reference (absolute seconds, authors' testbed): F-GMM is\n"
      "2.2x-3.4x faster than M/S on the binary datasets and 4.4x on\n"
      "Movies-3way; compare the S/F and M/F columns above for shape.\n");
  return 0;
}

}  // namespace
}  // namespace factorml::bench

int main(int argc, char** argv) { return factorml::bench::Main(argc, argv); }

// Ablation for the computation model of Sec. V-B: the paper derives the
// saving rate Delta-tau / tau of the factorized covariance update as a
// closed form in (nS/nR, dS, dR). This bench sweeps dR and rr and prints
// the model's prediction next to the *measured* multiplication savings of
// F-GMM vs S-GMM from the instrumented kernels. The model covers only the
// Sigma-update pass while the measurement spans the whole EM iteration,
// and our F-GMM additionally halves the cross-block work by exploiting
// precision-matrix symmetry (GmmOptions::exploit_symmetry), so measured
// savings sit somewhat above the paper's formula while tracking its
// trends in rr and dR. Pass --paper_literal to disable the refinement and
// compare against the formula's own accounting.

#include <cstdio>

#include "bench_util.h"
#include "common/flags.h"
#include "core/factorml.h"

namespace factorml::bench {
namespace {

int Main(int argc, char** argv) {
  ArgParser args(argc, argv);
  ApplyCommonBenchFlags(args);
  const int64_t n_r = args.GetInt("nr", 200);
  const int64_t d_s = args.GetInt("ds", 5);

  BenchDir dir;
  storage::BufferPool pool(4096);
  gmm::GmmOptions opt;
  opt.num_components = 3;
  opt.max_iters = 2;
  opt.temp_dir = dir.str();
  opt.exploit_symmetry = !args.GetBool("paper_literal", false);

  std::printf("== Sec. V-B ablation: analytical saving rate vs measured "
              "multiply savings (nR=%lld, dS=%lld) ==\n\n",
              static_cast<long long>(n_r), static_cast<long long>(d_s));
  std::printf("%6s %6s %14s %14s\n", "rr", "dR", "model dt/t",
              "measured dt/t");
  for (const int64_t rr : {20LL, 100LL, 400LL}) {
    for (const int64_t d_r : {5LL, 15LL, 30LL}) {
      data::SyntheticSpec spec;
      spec.dir = dir.str();
      spec.name = "sr_" + std::to_string(rr) + "_" + std::to_string(d_r);
      spec.s_rows = rr * n_r;
      spec.s_feats = static_cast<size_t>(d_s);
      spec.attrs = {data::AttributeSpec{n_r, static_cast<size_t>(d_r)}};
      spec.seed = 2;
      auto rel_or = data::GenerateSynthetic(spec, &pool);
      if (!rel_or.ok()) Die(rel_or.status());

      core::TrainReport rs, rf;
      pool.Clear();
      auto s = core::TrainGmm(rel_or.value(), opt,
                              core::Algorithm::kStreaming, &pool, &rs);
      if (!s.ok()) Die(s.status());
      pool.Clear();
      auto f = core::TrainGmm(rel_or.value(), opt,
                              core::Algorithm::kFactorized, &pool, &rf);
      if (!f.ok()) Die(f.status());

      const double measured =
          1.0 - static_cast<double>(rf.ops.mults) /
                    static_cast<double>(rs.ops.mults);
      const double model = costmodel::GmmSigmaSavingRate(
          rr * n_r, n_r, d_s, d_r);
      std::printf("%6lld %6lld %14.3f %14.3f\n", static_cast<long long>(rr),
                  static_cast<long long>(d_r), model, measured);
    }
  }
  return 0;
}

}  // namespace
}  // namespace factorml::bench

int main(int argc, char** argv) { return factorml::bench::Main(argc, argv); }

// Reproduces Figure 6 of the paper: NN training over a 3-way join
// (S |><| R1 |><| R2), varying rr = nS/nR1 (--part=rr), dR1 (--part=dr1)
// and the number of hidden units nh (--part=nh).

#include <cstdio>
#include <string>

#include "bench_util.h"
#include "common/flags.h"
#include "core/factorml.h"

namespace factorml::bench {
namespace {

join::NormalizedRelations Generate(const std::string& dir, int64_t n_s,
                                   int64_t n_r1, size_t d_r1, int64_t n_r2,
                                   size_t d_r2, storage::BufferPool* pool) {
  data::SyntheticSpec spec;
  spec.dir = dir;
  spec.name = "fig6_" + std::to_string(n_s) + "_" + std::to_string(d_r1);
  spec.s_rows = n_s;
  spec.s_feats = 5;
  spec.attrs = {data::AttributeSpec{n_r1, d_r1},
                data::AttributeSpec{n_r2, d_r2}};
  spec.with_target = true;
  spec.seed = 42;
  auto rel = data::GenerateSynthetic(spec, pool);
  if (!rel.ok()) Die(rel.status());
  return std::move(rel).value();
}

int Main(int argc, char** argv) {
  ArgParser args(argc, argv);
  ApplyCommonBenchFlags(args);
  JsonReport json("fig6_nn_multiway", args);
  const std::string part = args.GetString("part", "all");
  const int64_t n_r1 = args.GetInt("nr1", 200);
  const int64_t n_r2 = args.GetInt("nr2", 200);
  const size_t d_r2 = static_cast<size_t>(args.GetInt("dr2", 5));
  const int epochs = static_cast<int>(args.GetInt("epochs", 2));

  BenchDir dir;
  storage::BufferPool pool(4096);
  nn::NnOptions opt;
  opt.epochs = epochs;
  opt.temp_dir = dir.str();

  std::printf("== Figure 6: NN over a 3-way join (nR1=%lld, nR2=%lld, "
              "dS=5, dR2=%zu, epochs=%d) ==\n",
              static_cast<long long>(n_r1), static_cast<long long>(n_r2),
              d_r2, epochs);

  if (part == "rr" || part == "all") {
    std::printf("\n-- Fig 6(a): varying rr = nS/nR1 (dR1=10, nh=50) --\n");
    PrintTrioHeader("rr");
    for (const int64_t rr : args.GetIntList("rr", {20, 50, 100, 200})) {
      auto rel =
          Generate(dir.str(), rr * n_r1, n_r1, 10, n_r2, d_r2, &pool);
      opt.hidden = {50};
      EmitTrioRow(&json, "fig6a_rr", std::to_string(rr),
                  RunNnAll(rel, opt, &pool));
    }
  }

  if (part == "dr1" || part == "all") {
    std::printf("\n-- Fig 6(b): varying dR1 (rr=100, nh=50) --\n");
    PrintTrioHeader("dR1");
    for (const int64_t d_r1 : args.GetIntList("dr1", {5, 10, 20, 30})) {
      auto rel = Generate(dir.str(), 100 * n_r1, n_r1,
                          static_cast<size_t>(d_r1), n_r2, d_r2, &pool);
      opt.hidden = {50};
      EmitTrioRow(&json, "fig6b_dr1", std::to_string(d_r1),
                  RunNnAll(rel, opt, &pool));
    }
  }

  if (part == "nh" || part == "all") {
    std::printf("\n-- Fig 6(c): varying nh (rr=100, dR1=10) --\n");
    PrintTrioHeader("nh");
    auto rel = Generate(dir.str(), 100 * n_r1, n_r1, 10, n_r2, d_r2, &pool);
    for (const int64_t nh : args.GetIntList("nh", {10, 25, 50, 100})) {
      opt.hidden = {static_cast<size_t>(nh)};
      EmitTrioRow(&json, "fig6c_nh", std::to_string(nh),
                  RunNnAll(rel, opt, &pool));
    }
  }
  return 0;
}

}  // namespace
}  // namespace factorml::bench

int main(int argc, char** argv) { return factorml::bench::Main(argc, argv); }

// Ablation for Sec. VI-A2: the paper's negative result that sharing
// computation *beyond* the first layer is unprofitable even for additive
// activations. We (1) print the analytical op counts with and without the
// Eq. 27 reuse, and (2) time a faithful micro-simulation of both schemes
// on an identity-activation second layer, confirming the reuse variant is
// slower for every shape.

#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "common/flags.h"
#include "common/rng.h"
#include "common/stopwatch.h"
#include "core/factorml.h"

namespace factorml::bench {
namespace {

/// Second-layer pre-activations without reuse, the paper's accounting:
/// the first-layer output h = f(T1 + T2) already exists (it is produced by
/// layer 1 whether or not the second layer shares anything), so the second
/// layer costs exactly z_k = sum_j w2[k][j] * h[j] per unit per tuple.
double SimulateNoReuse(const la::Matrix& h, const la::Matrix& w2,
                       std::vector<double>* sink) {
  Stopwatch watch;
  const size_t n = h.rows();
  const size_t nh = h.cols();
  const size_t nl = w2.rows();
  double acc = 0.0;
  for (size_t i = 0; i < n; ++i) {
    const double* hr = h.Row(i).data();
    for (size_t k = 0; k < nl; ++k) {
      double z = 0.0;
      const double* w = w2.Row(k).data();
      for (size_t j = 0; j < nh; ++j) z += w[j] * hr[j];
      acc += z;
    }
  }
  (*sink)[0] = acc;
  return watch.ElapsedSeconds();
}

/// With Eq. 27 reuse: T3[rid][k] = sum_j w2[k][j] * f(T2[rid][j]) computed
/// once per attribute tuple; per data tuple z_k = sum_j w2[k][j]*f(T1[j])
/// + T3[rid][k]. Same result, more total operations.
double SimulateWithReuse(const la::Matrix& t1, const la::Matrix& t2_per_rid,
                         const std::vector<int64_t>& rid_of,
                         const la::Matrix& w2, std::vector<double>* sink) {
  Stopwatch watch;
  const size_t n = t1.rows();
  const size_t nh = t1.cols();
  const size_t nl = w2.rows();
  const size_t n_rid = t2_per_rid.rows();
  la::Matrix t3(n_rid, nl);
  for (size_t r = 0; r < n_rid; ++r) {
    const double* t2 = t2_per_rid.Row(r).data();
    for (size_t k = 0; k < nl; ++k) {
      double z = 0.0;
      const double* w = w2.Row(k).data();
      for (size_t j = 0; j < nh; ++j) z += w[j] * t2[j];
      t3(r, k) = z;
    }
  }
  double acc = 0.0;
  for (size_t i = 0; i < n; ++i) {
    const double* a = t1.Row(i).data();
    const double* t3_row = t3.Row(static_cast<size_t>(rid_of[i])).data();
    for (size_t k = 0; k < nl; ++k) {
      double z = 0.0;
      const double* w = w2.Row(k).data();
      for (size_t j = 0; j < nh; ++j) z += w[j] * a[j];
      acc += z + t3_row[k];
    }
  }
  (*sink)[0] = acc;
  return watch.ElapsedSeconds();
}

int Main(int argc, char** argv) {
  ArgParser args(argc, argv);
  ApplyCommonBenchFlags(args);
  const int64_t n_s = args.GetInt("ns", 200000);
  const int64_t n_r = args.GetInt("nr", 200);
  const int64_t n_l = args.GetInt("nl", 20);

  std::printf("== Sec. VI-A2 ablation: second-layer computation sharing "
              "(identity activation) ==\n\n");
  std::printf("analytical operation counts (nS=%lld, nR=%lld, nl=%lld):\n",
              static_cast<long long>(n_s), static_cast<long long>(n_r),
              static_cast<long long>(n_l));
  std::printf("%6s %16s %16s %8s\n", "nh", "no-reuse ops", "reuse ops",
              "reuse/no");
  for (const int64_t nh : {10LL, 50LL, 200LL}) {
    const uint64_t no = costmodel::NnSecondLayerOpsNoReuse(n_s, nh, n_l);
    const uint64_t with =
        costmodel::NnSecondLayerOpsWithReuse(n_s, n_r, nh, n_l);
    std::printf("%6lld %16llu %16llu %8.3f\n", static_cast<long long>(nh),
                static_cast<unsigned long long>(no),
                static_cast<unsigned long long>(with),
                static_cast<double>(with) / static_cast<double>(no));
  }

  std::printf("\nmeasured micro-simulation of the second layer alone "
              "(seconds, lower is better):\n");
  std::printf("%6s %12s %12s %8s\n", "nh", "no-reuse", "reuse", "ratio");
  Rng rng(3);
  std::vector<double> sink(1);
  for (const size_t nh : {size_t{10}, size_t{50}, size_t{200}}) {
    la::Matrix t1(static_cast<size_t>(n_s), nh);
    la::Matrix t2(static_cast<size_t>(n_r), nh);
    la::Matrix w2(static_cast<size_t>(n_l), nh);
    for (size_t i = 0; i < t1.size(); ++i) t1.data()[i] = rng.NextDouble();
    for (size_t i = 0; i < t2.size(); ++i) t2.data()[i] = rng.NextDouble();
    for (size_t i = 0; i < w2.size(); ++i) w2.data()[i] = rng.NextDouble();
    std::vector<int64_t> rid_of(static_cast<size_t>(n_s));
    for (auto& r : rid_of) r = static_cast<int64_t>(rng.NextBelow(n_r));
    // The no-reuse path consumes the layer-1 output h, which layer 1
    // produces regardless; build it outside the timed region.
    la::Matrix h(static_cast<size_t>(n_s), nh);
    for (size_t i = 0; i < static_cast<size_t>(n_s); ++i) {
      const double* a = t1.Row(i).data();
      const double* b = t2.Row(static_cast<size_t>(rid_of[i])).data();
      double* dst = h.Row(i).data();
      for (size_t j = 0; j < nh; ++j) dst[j] = a[j] + b[j];
    }
    const double t_no = SimulateNoReuse(h, w2, &sink);
    const double t_with = SimulateWithReuse(t1, t2, rid_of, w2, &sink);
    std::printf("%6zu %12.4f %12.4f %8.3f\n", nh, t_no, t_with,
                t_with / t_no);
  }
  std::printf("\nconclusion (matches the paper): counting the second layer "
              "alone, reuse adds the per-tuple T3 addition and the per-R-"
              "tuple T3 construction without removing any work, so it "
              "never wins; F-NN therefore factorizes only the first "
              "layer.\n");
  return 0;
}

}  // namespace
}  // namespace factorml::bench

int main(int argc, char** argv) { return factorml::bench::Main(argc, argv); }

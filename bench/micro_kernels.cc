// google-benchmark microbenchmarks for the substrate kernels: dense
// linear algebra, Cholesky, storage scans and the streamed join. These
// are the building blocks whose relative costs determine where the
// M/S/F trade-offs land on a given machine.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "bench_util.h"
#include "common/rng.h"
#include "common/stopwatch.h"
#include "core/factorml.h"
#include "join/join_cursor.h"
#include "la/cholesky.h"
#include "la/kernels.h"
#include "la/ops.h"

namespace factorml {
namespace {

la::Matrix RandomMatrix(size_t rows, size_t cols, uint64_t seed) {
  Rng rng(seed);
  la::Matrix m(rows, cols);
  for (size_t i = 0; i < m.size(); ++i) m.data()[i] = rng.NextGaussian();
  return m;
}

void BM_GemmNT(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  la::Matrix x = RandomMatrix(256, n, 1);
  la::Matrix w = RandomMatrix(64, n, 2);
  la::Matrix c;
  for (auto _ : state) {
    la::GemmNT(x, w, &c, false);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() * 256 * 64 * n);
}
BENCHMARK(BM_GemmNT)->Arg(8)->Arg(32)->Arg(128);

void BM_QuadForm(benchmark::State& state) {
  const size_t d = static_cast<size_t>(state.range(0));
  la::Matrix a = RandomMatrix(d, d, 3);
  la::Matrix x = RandomMatrix(1, d, 4);
  for (auto _ : state) {
    benchmark::DoNotOptimize(la::QuadForm(a, x.Row(0).data(), d));
  }
}
BENCHMARK(BM_QuadForm)->Arg(8)->Arg(32)->Arg(128);

void BM_BlockQuadFormSplit(benchmark::State& state) {
  // The factorized E-step's cost shape: UL + UR + LL on a dS/dR split,
  // with the LR block assumed cached.
  const size_t d = static_cast<size_t>(state.range(0));
  const size_t ds = d / 4;
  const size_t dr = d - ds;
  la::Matrix a = RandomMatrix(d, d, 5);
  la::Matrix x = RandomMatrix(1, d, 6);
  const double* xs = x.Row(0).data();
  const double* xr = xs + ds;
  for (auto _ : state) {
    double q = la::Bilinear(a, 0, 0, xs, ds, xs, ds);
    q += la::Bilinear(a, 0, ds, xs, ds, xr, dr);
    q += la::Bilinear(a, ds, 0, xr, dr, xs, ds);
    benchmark::DoNotOptimize(q);
  }
}
BENCHMARK(BM_BlockQuadFormSplit)->Arg(8)->Arg(32)->Arg(128);

void BM_Cholesky(benchmark::State& state) {
  const size_t d = static_cast<size_t>(state.range(0));
  la::Matrix b = RandomMatrix(d, d, 7);
  la::Matrix a(d, d);
  for (size_t i = 0; i < d; ++i) {
    for (size_t j = 0; j < d; ++j) {
      double s = 0.0;
      for (size_t p = 0; p < d; ++p) s += b(i, p) * b(j, p);
      a(i, j) = s;
    }
    a(i, i) += d;
  }
  la::Cholesky chol;
  for (auto _ : state) {
    benchmark::DoNotOptimize(chol.Factor(a).ok());
  }
}
BENCHMARK(BM_Cholesky)->Arg(8)->Arg(32)->Arg(128);

class StorageFixture : public benchmark::Fixture {
 public:
  void SetUp(const benchmark::State&) override {
    if (rel) return;
    dir = std::make_unique<bench::BenchDir>();
    pool = std::make_unique<storage::BufferPool>(4096);
    data::SyntheticSpec spec;
    spec.dir = dir->str();
    spec.s_rows = 50000;
    spec.s_feats = 5;
    spec.attrs = {data::AttributeSpec{500, 10}};
    spec.seed = 9;
    auto r = data::GenerateSynthetic(spec, pool.get());
    if (!r.ok()) bench::Die(r.status());
    rel = std::make_unique<join::NormalizedRelations>(std::move(r).value());
  }

  static std::unique_ptr<bench::BenchDir> dir;
  static std::unique_ptr<storage::BufferPool> pool;
  static std::unique_ptr<join::NormalizedRelations> rel;
};
std::unique_ptr<bench::BenchDir> StorageFixture::dir;
std::unique_ptr<storage::BufferPool> StorageFixture::pool;
std::unique_ptr<join::NormalizedRelations> StorageFixture::rel;

BENCHMARK_F(StorageFixture, BM_TableScan)(benchmark::State& state) {
  storage::RowBatch batch;
  for (auto _ : state) {
    storage::TableScanner scanner(&rel->s, pool.get(), 4096);
    int64_t rows = 0;
    while (scanner.Next(&batch)) rows += batch.num_rows;
    benchmark::DoNotOptimize(rows);
  }
  state.SetItemsProcessed(state.iterations() * rel->s.num_rows());
}

BENCHMARK_F(StorageFixture, BM_JoinCursorStream)(benchmark::State& state) {
  join::JoinBatch batch;
  for (auto _ : state) {
    join::JoinCursor cursor(rel.get(), pool.get(), 4096);
    int64_t rows = 0;
    while (cursor.Next(&batch)) rows += batch.s_rows.num_rows;
    benchmark::DoNotOptimize(rows);
  }
  state.SetItemsProcessed(state.iterations() * rel->s.num_rows());
}

BENCHMARK_F(StorageFixture, BM_MaterializeJoin)(benchmark::State& state) {
  int i = 0;
  for (auto _ : state) {
    auto t = join::MaterializeJoin(
        *rel, pool.get(), dir->str() + "/bm_t" + std::to_string(i++ % 4) +
                              ".fml");
    if (!t.ok()) bench::Die(t.status());
    benchmark::DoNotOptimize(t.value().num_rows());
  }
}

// ---------------------------------------------------------------------
// Thread scaling of the factorized trainers over the fig3 binary-join
// workload (nS = rr * nR, dS = 5, dR = 15). One row per thread count —
// the exec/ runtime's speedup report; --threads=1 is the serial baseline.

class Fig3ScalingFixture : public benchmark::Fixture {
 public:
  void SetUp(const benchmark::State&) override {
    if (rel) return;
    dir = std::make_unique<bench::BenchDir>();
    pool = std::make_unique<storage::BufferPool>(4096);
    data::SyntheticSpec spec;
    spec.dir = dir->str();
    spec.name = "fig3_scaling";
    spec.s_rows = 40000;
    spec.s_feats = 5;
    spec.attrs = {data::AttributeSpec{200, 15}};
    spec.with_target = true;  // shared by the GMM and NN scaling runs
    spec.seed = 11;
    auto r = data::GenerateSynthetic(spec, pool.get());
    if (!r.ok()) bench::Die(r.status());
    rel = std::make_unique<join::NormalizedRelations>(std::move(r).value());
  }

  static std::unique_ptr<bench::BenchDir> dir;
  static std::unique_ptr<storage::BufferPool> pool;
  static std::unique_ptr<join::NormalizedRelations> rel;
};
std::unique_ptr<bench::BenchDir> Fig3ScalingFixture::dir;
std::unique_ptr<storage::BufferPool> Fig3ScalingFixture::pool;
std::unique_ptr<join::NormalizedRelations> Fig3ScalingFixture::rel;

BENCHMARK_DEFINE_F(Fig3ScalingFixture, BM_FGmmThreads)
(benchmark::State& state) {
  gmm::GmmOptions opt;
  opt.num_components = 5;
  opt.max_iters = 2;
  opt.temp_dir = dir->str();
  opt.threads = static_cast<int>(state.range(0));
  for (auto _ : state) {
    pool->Clear();
    auto p = gmm::TrainGmmFactorized(*rel, opt, pool.get(), nullptr);
    if (!p.ok()) bench::Die(p.status());
    benchmark::DoNotOptimize(p.value().pi.data());
  }
  state.SetItemsProcessed(state.iterations() * rel->s.num_rows());
}
BENCHMARK_REGISTER_F(Fig3ScalingFixture, BM_FGmmThreads)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->Unit(benchmark::kMillisecond);

BENCHMARK_DEFINE_F(Fig3ScalingFixture, BM_FNnThreads)
(benchmark::State& state) {
  nn::NnOptions opt;
  opt.hidden = {50};
  opt.epochs = 2;
  opt.temp_dir = dir->str();
  opt.threads = static_cast<int>(state.range(0));
  for (auto _ : state) {
    pool->Clear();
    auto m = nn::TrainNnFactorized(*rel, opt, pool.get(), nullptr);
    if (!m.ok()) bench::Die(m.status());
    benchmark::DoNotOptimize(m.value().w[0].data());
  }
  state.SetItemsProcessed(state.iterations() * rel->s.num_rows());
}
BENCHMARK_REGISTER_F(Fig3ScalingFixture, BM_FNnThreads)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->Unit(benchmark::kMillisecond);

// ---------------------------------------------------------------------
// Kernel plane: the strip batch kernels under the scalar table vs the
// vector table this CPU resolves to (portable or avx2). Arg pair =
// (d, backend) with backend 0 = scalar, 1 = simd; the label names the
// resolved table. These are the per-strip inner loops whose scalar/simd
// ratio bounds what --kernels=simd can buy a whole training run.

constexpr size_t kStripRows = 256;  // storage::kDefaultStripRows
constexpr size_t kNh = 16;          // NN hidden width for the gemm shapes
constexpr size_t kGatherRows = 64;  // attribute-table height for gathers

/// One decoded strip's worth of random columns plus the small operands
/// the strip kernels take, including the gemm/gather operands of the NN
/// epoch plane (W1 slice, transposed activation block, partial-cache
/// rows and a rid column).
struct StripData {
  StripData(size_t d, size_t rows, uint64_t seed)
      : data(d * rows), w(rows), v(d), center(d), out(rows), cols(d),
        w1(kNh * d), ct(kNh * rows), grad(kNh * d),
        base(kGatherRows * kNh), gout(rows * kNh), idx(rows) {
    Rng rng(seed);
    for (double& x : data) x = rng.NextGaussian();
    for (double& x : w) x = rng.NextUniform(0.25, 1.25);
    for (double& x : v) x = rng.NextGaussian();
    for (double& x : center) x = rng.NextGaussian();
    for (double& x : w1) x = rng.NextGaussian();
    for (double& x : base) x = rng.NextGaussian();
    for (size_t j = 0; j < d; ++j) cols[j] = data.data() + j * rows;
    // FK1-run-shaped rid column: short contiguous runs, like the group
    // batches join::ChunkFk1Runs delivers.
    for (size_t r = 0; r < rows; ++r) {
      idx[r] = static_cast<int64_t>((r / 4) % kGatherRows);
    }
  }
  std::vector<double> data, w, v, center, out;
  std::vector<const double*> cols;
  std::vector<double> w1, ct, grad, base, gout;
  std::vector<int64_t> idx;
};

la::KernelMode ModeOf(const benchmark::State& state) {
  return state.range(1) == 1 ? la::KernelMode::kSimd
                             : la::KernelMode::kScalar;
}

void LabelBackend(benchmark::State& state) {
  state.SetLabel(state.range(1) == 1 ? la::SimdBackendName() : "scalar");
}

void BM_SyrkStrip(benchmark::State& state) {
  const size_t d = static_cast<size_t>(state.range(0));
  StripData s(d, kStripRows, 21);
  std::vector<double> gram(d * d, 0.0);
  la::SelectKernels(ModeOf(state));
  const la::Kernels& k = la::Active();
  for (auto _ : state) {
    k.syrk_strip(s.cols.data(), d, kStripRows, s.w.data(), gram.data(), d);
    benchmark::DoNotOptimize(gram.data());
  }
  la::SelectKernels(la::KernelMode::kScalar);
  state.SetItemsProcessed(state.iterations() * kStripRows * d * d);
  LabelBackend(state);
}
BENCHMARK(BM_SyrkStrip)->ArgsProduct({{8, 32}, {0, 1}});

void BM_ColDotStrip(benchmark::State& state) {
  const size_t d = static_cast<size_t>(state.range(0));
  StripData s(d, kStripRows, 22);
  la::SelectKernels(ModeOf(state));
  const la::Kernels& k = la::Active();
  for (auto _ : state) {
    k.col_dot_strip(s.cols.data(), d, kStripRows, s.v.data(),
                    s.out.data());
    benchmark::DoNotOptimize(s.out.data());
  }
  la::SelectKernels(la::KernelMode::kScalar);
  state.SetItemsProcessed(state.iterations() * kStripRows * d);
  LabelBackend(state);
}
BENCHMARK(BM_ColDotStrip)->ArgsProduct({{8, 32}, {0, 1}});

void BM_DistStrip(benchmark::State& state) {
  const size_t d = static_cast<size_t>(state.range(0));
  StripData s(d, kStripRows, 23);
  la::SelectKernels(ModeOf(state));
  const la::Kernels& k = la::Active();
  for (auto _ : state) {
    k.dist_strip(s.cols.data(), d, kStripRows, s.center.data(),
                 s.out.data());
    benchmark::DoNotOptimize(s.out.data());
  }
  la::SelectKernels(la::KernelMode::kScalar);
  state.SetItemsProcessed(state.iterations() * kStripRows * d);
  LabelBackend(state);
}
BENCHMARK(BM_DistStrip)->ArgsProduct({{8, 32}, {0, 1}});

void BM_QuadFormStrip(benchmark::State& state) {
  const size_t d = static_cast<size_t>(state.range(0));
  StripData s(d, kStripRows, 24);
  la::Matrix a = RandomMatrix(d, d, 25);
  // diff is d x rows row-major, like the GMM E-step's centered strip.
  la::SelectKernels(ModeOf(state));
  const la::Kernels& k = la::Active();
  for (auto _ : state) {
    k.quadform_strip(s.data.data(), d, kStripRows, a.data(), d,
                     s.out.data());
    benchmark::DoNotOptimize(s.out.data());
  }
  la::SelectKernels(la::KernelMode::kScalar);
  state.SetItemsProcessed(state.iterations() * kStripRows * d * d);
  LabelBackend(state);
}
BENCHMARK(BM_QuadFormStrip)->ArgsProduct({{8, 32}, {0, 1}});

void BM_GemmStrip(benchmark::State& state) {
  // The NN first-layer forward shape: C(nh x rows) = W1(nh x d) * strip.
  const size_t d = static_cast<size_t>(state.range(0));
  StripData s(d, kStripRows, 26);
  la::SelectKernels(ModeOf(state));
  const la::Kernels& k = la::Active();
  for (auto _ : state) {
    k.gemm_strip(s.w1.data(), d, s.data.data(), kStripRows, kNh, kStripRows,
                 d, s.ct.data(), kStripRows, /*trans_b=*/false,
                 /*accumulate=*/false);
    benchmark::DoNotOptimize(s.ct.data());
  }
  la::SelectKernels(la::KernelMode::kScalar);
  state.SetItemsProcessed(state.iterations() * kStripRows * kNh * d);
  LabelBackend(state);
}
BENCHMARK(BM_GemmStrip)->ArgsProduct({{8, 32}, {0, 1}});

void BM_GemmStripT(benchmark::State& state) {
  // The NN backward shape: G(nh x d) += delta^T(nh x rows) * strip^T.
  const size_t d = static_cast<size_t>(state.range(0));
  StripData s(d, kStripRows, 27);
  la::SelectKernels(ModeOf(state));
  const la::Kernels& k = la::Active();
  for (auto _ : state) {
    k.gemm_strip(s.ct.data(), kStripRows, s.data.data(), kStripRows, kNh, d,
                 kStripRows, s.grad.data(), d, /*trans_b=*/true,
                 /*accumulate=*/true);
    benchmark::DoNotOptimize(s.grad.data());
  }
  la::SelectKernels(la::KernelMode::kScalar);
  state.SetItemsProcessed(state.iterations() * kStripRows * kNh * d);
  LabelBackend(state);
}
BENCHMARK(BM_GemmStripT)->ArgsProduct({{8, 32}, {0, 1}});

void BM_GatherAddRowsStrip(benchmark::State& state) {
  // The factorized NN partial-cache gather over an FK1 rid column.
  StripData s(8, kStripRows, 28);
  la::SelectKernels(ModeOf(state));
  const la::Kernels& k = la::Active();
  for (auto _ : state) {
    k.gather_add_rows_strip(s.base.data(), kNh, s.idx.data(), kStripRows,
                            kNh, s.gout.data(), kNh);
    benchmark::DoNotOptimize(s.gout.data());
  }
  la::SelectKernels(la::KernelMode::kScalar);
  state.SetItemsProcessed(state.iterations() * kStripRows * kNh);
  LabelBackend(state);
}
BENCHMARK(BM_GatherAddRowsStrip)->ArgsProduct({{8}, {0, 1}});

void BM_ScatterAddStrip(benchmark::State& state) {
  // The GMM/k-means per-rid mass scatter over an FK1 rid column.
  StripData s(8, kStripRows, 29);
  std::vector<double> acc(kGatherRows, 0.0);
  la::SelectKernels(ModeOf(state));
  const la::Kernels& k = la::Active();
  for (auto _ : state) {
    k.scatter_add_strip(s.idx.data(), s.w.data(), kStripRows, acc.data());
    benchmark::DoNotOptimize(acc.data());
  }
  la::SelectKernels(la::KernelMode::kScalar);
  state.SetItemsProcessed(state.iterations() * kStripRows);
  LabelBackend(state);
}
BENCHMARK(BM_ScatterAddStrip)->ArgsProduct({{8}, {0, 1}});

}  // namespace

// ---------------------------------------------------------------------
// --json=PATH roofline sweep (the BENCH_kernels.json CI artifact): times
// every kernel of both tables on one strip at d in {8, 32}, and records
// achieved GFLOP/s and effective GB/s next to the resolved backend and
// CPU features — enough to place each kernel against the machine's
// compute/bandwidth ceilings and track the scalar/simd ratio over time.

void WriteKernelRoofline(const std::string& path) {
  constexpr size_t kRows = kStripRows;
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write --json=%s\n", path.c_str());
    std::exit(1);
  }
  std::fprintf(f, "[\n");
  bool first = true;
  for (const size_t d : {size_t{8}, size_t{32}}) {
    StripData s(d, kRows, 31);
    std::vector<double> gram(d * d, 0.0);
    la::Matrix a = RandomMatrix(d, d, 32);
    std::vector<double> y(d, 0.0);
    struct Cell {
      const char* kernel;
      uint64_t flops, bytes;  // per call
      void (*run)(const la::Kernels&, StripData&, std::vector<double>&,
                  const la::Matrix&, std::vector<double>&, size_t);
    };
    const Cell cells[] = {
        {"syrk_strip", 2 * kRows * d * d + 2 * kRows * d,
         (d * kRows + kRows + 2 * d * d) * 8,
         [](const la::Kernels& k, StripData& s, std::vector<double>& gram,
            const la::Matrix&, std::vector<double>&, size_t d) {
           k.syrk_strip(s.cols.data(), d, kRows, s.w.data(), gram.data(),
                        d);
         }},
        {"col_dot_strip", 2 * kRows * d, (d * kRows + d + kRows) * 8,
         [](const la::Kernels& k, StripData& s, std::vector<double>&,
            const la::Matrix&, std::vector<double>&, size_t d) {
           k.col_dot_strip(s.cols.data(), d, kRows, s.v.data(),
                           s.out.data());
         }},
        {"colsum_strip", 2 * kRows * d, (d * kRows + kRows + 2 * d) * 8,
         [](const la::Kernels& k, StripData& s, std::vector<double>&,
            const la::Matrix&, std::vector<double>& acc, size_t d) {
           k.colsum_strip(s.cols.data(), d, kRows, s.w.data(), acc.data());
         }},
        {"dist_strip", 3 * kRows * d, (d * kRows + d + kRows) * 8,
         [](const la::Kernels& k, StripData& s, std::vector<double>&,
            const la::Matrix&, std::vector<double>&, size_t d) {
           k.dist_strip(s.cols.data(), d, kRows, s.center.data(),
                        s.out.data());
         }},
        {"quadform_strip", 2 * kRows * (d * d + d),
         (d * kRows + d * d * 8 + kRows) * 8,
         [](const la::Kernels& k, StripData& s, std::vector<double>&,
            const la::Matrix& a, std::vector<double>&, size_t d) {
           k.quadform_strip(s.data.data(), d, kRows, a.data(), d,
                            s.out.data());
         }},
        {"gemm_strip", 2 * kRows * kNh * d,
         (d * kRows + kNh * d + kNh * kRows) * 8,
         [](const la::Kernels& k, StripData& s, std::vector<double>&,
            const la::Matrix&, std::vector<double>&, size_t d) {
           k.gemm_strip(s.w1.data(), d, s.data.data(), kRows, kNh, kRows, d,
                        s.ct.data(), kRows, /*trans_b=*/false,
                        /*accumulate=*/false);
         }},
        {"gemm_strip_t", 2 * kRows * kNh * d,
         (d * kRows + kNh * kRows + 2 * kNh * d) * 8,
         [](const la::Kernels& k, StripData& s, std::vector<double>&,
            const la::Matrix&, std::vector<double>&, size_t d) {
           k.gemm_strip(s.ct.data(), kRows, s.data.data(), kRows, kNh, d,
                        kRows, s.grad.data(), d, /*trans_b=*/true,
                        /*accumulate=*/true);
         }},
        {"gather_add_rows_strip", kRows * kNh,
         (2 * kRows * kNh * 8 + kRows * kNh * 8 + kRows * 8),
         [](const la::Kernels& k, StripData& s, std::vector<double>&,
            const la::Matrix&, std::vector<double>&, size_t) {
           k.gather_add_rows_strip(s.base.data(), kNh, s.idx.data(), kRows,
                                   kNh, s.gout.data(), kNh);
         }},
        {"scatter_add_strip", kRows,
         (kRows * 8 + kRows * 8 + 2 * kRows * 8),
         [](const la::Kernels& k, StripData& s, std::vector<double>&,
            const la::Matrix&, std::vector<double>&, size_t) {
           k.scatter_add_strip(s.idx.data(), s.w.data(), kRows,
                               s.gout.data());
         }},
    };
    for (const auto mode : {la::KernelMode::kScalar, la::KernelMode::kSimd}) {
      la::SelectKernels(mode);
      const la::Kernels& k = la::Active();
      for (const Cell& cell : cells) {
        // Reps sized so every cell runs ~2*10^8 inner-loop flops.
        const int reps = static_cast<int>(
            std::max<uint64_t>(100, 200'000'000 / cell.flops));
        cell.run(k, s, gram, a, y, d);  // warm-up (and page-in)
        Stopwatch sw;
        for (int i = 0; i < reps; ++i) cell.run(k, s, gram, a, y, d);
        const double secs = sw.ElapsedSeconds();
        const double gflops =
            static_cast<double>(cell.flops) * reps / secs * 1e-9;
        const double gbps =
            static_cast<double>(cell.bytes) * reps / secs * 1e-9;
        std::fprintf(
            f,
            "%s  {\"bench\": \"micro_kernels\", \"section\": \"roofline\","
            " \"kernel\": \"%s\", \"backend\": \"%s\", \"d\": %zu,"
            " \"rows\": %zu, \"reps\": %d, \"seconds\": %.6f,"
            " \"gflops\": %.3f, \"gbytes_per_sec\": %.3f,"
            " \"cpu_features\": \"%s\", \"git_describe\": \"%s\"}",
            first ? "" : ",\n", cell.kernel, k.name, d, kRows, reps, secs,
            gflops, gbps, la::CpuFeatures().c_str(), obs::GitDescribe());
        first = false;
      }
    }
    la::SelectKernels(la::KernelMode::kScalar);
  }
  std::fprintf(f, "\n]\n");
  std::fclose(f);
  std::printf("wrote kernel roofline to %s\n", path.c_str());
}

}  // namespace factorml

int main(int argc, char** argv) {
  // Peel --json=PATH off before google-benchmark parses the rest (it
  // rejects flags it does not own).
  std::string json_path;
  int keep = 1;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--json=", 7) == 0) {
      json_path = argv[i] + 7;
    } else {
      argv[keep++] = argv[i];
    }
  }
  argc = keep;
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  if (!json_path.empty()) factorml::WriteKernelRoofline(json_path);
  return 0;
}

// google-benchmark microbenchmarks for the substrate kernels: dense
// linear algebra, Cholesky, storage scans and the streamed join. These
// are the building blocks whose relative costs determine where the
// M/S/F trade-offs land on a given machine.

#include <benchmark/benchmark.h>

#include <memory>

#include "bench_util.h"
#include "common/rng.h"
#include "core/factorml.h"
#include "join/join_cursor.h"
#include "la/cholesky.h"
#include "la/ops.h"

namespace factorml {
namespace {

la::Matrix RandomMatrix(size_t rows, size_t cols, uint64_t seed) {
  Rng rng(seed);
  la::Matrix m(rows, cols);
  for (size_t i = 0; i < m.size(); ++i) m.data()[i] = rng.NextGaussian();
  return m;
}

void BM_GemmNT(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  la::Matrix x = RandomMatrix(256, n, 1);
  la::Matrix w = RandomMatrix(64, n, 2);
  la::Matrix c;
  for (auto _ : state) {
    la::GemmNT(x, w, &c, false);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() * 256 * 64 * n);
}
BENCHMARK(BM_GemmNT)->Arg(8)->Arg(32)->Arg(128);

void BM_QuadForm(benchmark::State& state) {
  const size_t d = static_cast<size_t>(state.range(0));
  la::Matrix a = RandomMatrix(d, d, 3);
  la::Matrix x = RandomMatrix(1, d, 4);
  for (auto _ : state) {
    benchmark::DoNotOptimize(la::QuadForm(a, x.Row(0).data(), d));
  }
}
BENCHMARK(BM_QuadForm)->Arg(8)->Arg(32)->Arg(128);

void BM_BlockQuadFormSplit(benchmark::State& state) {
  // The factorized E-step's cost shape: UL + UR + LL on a dS/dR split,
  // with the LR block assumed cached.
  const size_t d = static_cast<size_t>(state.range(0));
  const size_t ds = d / 4;
  const size_t dr = d - ds;
  la::Matrix a = RandomMatrix(d, d, 5);
  la::Matrix x = RandomMatrix(1, d, 6);
  const double* xs = x.Row(0).data();
  const double* xr = xs + ds;
  for (auto _ : state) {
    double q = la::Bilinear(a, 0, 0, xs, ds, xs, ds);
    q += la::Bilinear(a, 0, ds, xs, ds, xr, dr);
    q += la::Bilinear(a, ds, 0, xr, dr, xs, ds);
    benchmark::DoNotOptimize(q);
  }
}
BENCHMARK(BM_BlockQuadFormSplit)->Arg(8)->Arg(32)->Arg(128);

void BM_Cholesky(benchmark::State& state) {
  const size_t d = static_cast<size_t>(state.range(0));
  la::Matrix b = RandomMatrix(d, d, 7);
  la::Matrix a(d, d);
  for (size_t i = 0; i < d; ++i) {
    for (size_t j = 0; j < d; ++j) {
      double s = 0.0;
      for (size_t p = 0; p < d; ++p) s += b(i, p) * b(j, p);
      a(i, j) = s;
    }
    a(i, i) += d;
  }
  la::Cholesky chol;
  for (auto _ : state) {
    benchmark::DoNotOptimize(chol.Factor(a).ok());
  }
}
BENCHMARK(BM_Cholesky)->Arg(8)->Arg(32)->Arg(128);

class StorageFixture : public benchmark::Fixture {
 public:
  void SetUp(const benchmark::State&) override {
    if (rel) return;
    dir = std::make_unique<bench::BenchDir>();
    pool = std::make_unique<storage::BufferPool>(4096);
    data::SyntheticSpec spec;
    spec.dir = dir->str();
    spec.s_rows = 50000;
    spec.s_feats = 5;
    spec.attrs = {data::AttributeSpec{500, 10}};
    spec.seed = 9;
    auto r = data::GenerateSynthetic(spec, pool.get());
    if (!r.ok()) bench::Die(r.status());
    rel = std::make_unique<join::NormalizedRelations>(std::move(r).value());
  }

  static std::unique_ptr<bench::BenchDir> dir;
  static std::unique_ptr<storage::BufferPool> pool;
  static std::unique_ptr<join::NormalizedRelations> rel;
};
std::unique_ptr<bench::BenchDir> StorageFixture::dir;
std::unique_ptr<storage::BufferPool> StorageFixture::pool;
std::unique_ptr<join::NormalizedRelations> StorageFixture::rel;

BENCHMARK_F(StorageFixture, BM_TableScan)(benchmark::State& state) {
  storage::RowBatch batch;
  for (auto _ : state) {
    storage::TableScanner scanner(&rel->s, pool.get(), 4096);
    int64_t rows = 0;
    while (scanner.Next(&batch)) rows += batch.num_rows;
    benchmark::DoNotOptimize(rows);
  }
  state.SetItemsProcessed(state.iterations() * rel->s.num_rows());
}

BENCHMARK_F(StorageFixture, BM_JoinCursorStream)(benchmark::State& state) {
  join::JoinBatch batch;
  for (auto _ : state) {
    join::JoinCursor cursor(rel.get(), pool.get(), 4096);
    int64_t rows = 0;
    while (cursor.Next(&batch)) rows += batch.s_rows.num_rows;
    benchmark::DoNotOptimize(rows);
  }
  state.SetItemsProcessed(state.iterations() * rel->s.num_rows());
}

BENCHMARK_F(StorageFixture, BM_MaterializeJoin)(benchmark::State& state) {
  int i = 0;
  for (auto _ : state) {
    auto t = join::MaterializeJoin(
        *rel, pool.get(), dir->str() + "/bm_t" + std::to_string(i++ % 4) +
                              ".fml");
    if (!t.ok()) bench::Die(t.status());
    benchmark::DoNotOptimize(t.value().num_rows());
  }
}

// ---------------------------------------------------------------------
// Thread scaling of the factorized trainers over the fig3 binary-join
// workload (nS = rr * nR, dS = 5, dR = 15). One row per thread count —
// the exec/ runtime's speedup report; --threads=1 is the serial baseline.

class Fig3ScalingFixture : public benchmark::Fixture {
 public:
  void SetUp(const benchmark::State&) override {
    if (rel) return;
    dir = std::make_unique<bench::BenchDir>();
    pool = std::make_unique<storage::BufferPool>(4096);
    data::SyntheticSpec spec;
    spec.dir = dir->str();
    spec.name = "fig3_scaling";
    spec.s_rows = 40000;
    spec.s_feats = 5;
    spec.attrs = {data::AttributeSpec{200, 15}};
    spec.with_target = true;  // shared by the GMM and NN scaling runs
    spec.seed = 11;
    auto r = data::GenerateSynthetic(spec, pool.get());
    if (!r.ok()) bench::Die(r.status());
    rel = std::make_unique<join::NormalizedRelations>(std::move(r).value());
  }

  static std::unique_ptr<bench::BenchDir> dir;
  static std::unique_ptr<storage::BufferPool> pool;
  static std::unique_ptr<join::NormalizedRelations> rel;
};
std::unique_ptr<bench::BenchDir> Fig3ScalingFixture::dir;
std::unique_ptr<storage::BufferPool> Fig3ScalingFixture::pool;
std::unique_ptr<join::NormalizedRelations> Fig3ScalingFixture::rel;

BENCHMARK_DEFINE_F(Fig3ScalingFixture, BM_FGmmThreads)
(benchmark::State& state) {
  gmm::GmmOptions opt;
  opt.num_components = 5;
  opt.max_iters = 2;
  opt.temp_dir = dir->str();
  opt.threads = static_cast<int>(state.range(0));
  for (auto _ : state) {
    pool->Clear();
    auto p = gmm::TrainGmmFactorized(*rel, opt, pool.get(), nullptr);
    if (!p.ok()) bench::Die(p.status());
    benchmark::DoNotOptimize(p.value().pi.data());
  }
  state.SetItemsProcessed(state.iterations() * rel->s.num_rows());
}
BENCHMARK_REGISTER_F(Fig3ScalingFixture, BM_FGmmThreads)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->Unit(benchmark::kMillisecond);

BENCHMARK_DEFINE_F(Fig3ScalingFixture, BM_FNnThreads)
(benchmark::State& state) {
  nn::NnOptions opt;
  opt.hidden = {50};
  opt.epochs = 2;
  opt.temp_dir = dir->str();
  opt.threads = static_cast<int>(state.range(0));
  for (auto _ : state) {
    pool->Clear();
    auto m = nn::TrainNnFactorized(*rel, opt, pool.get(), nullptr);
    if (!m.ok()) bench::Die(m.status());
    benchmark::DoNotOptimize(m.value().w[0].data());
  }
  state.SetItemsProcessed(state.iterations() * rel->s.num_rows());
}
BENCHMARK_REGISTER_F(Fig3ScalingFixture, BM_FNnThreads)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace factorml

BENCHMARK_MAIN();

// Work-stealing on Zipf-skewed FK1 runs.
//
// Static run morsels split the pass by total row weight, but a handful of
// giant runs pin whole chunks of work to single workers and the rest go
// idle. The chunk-ordered scheduler splits the same pass into many small
// chunks; with --steal=on idle workers drain the backlog of the loaded
// ones. Because every chunk owns its accumulator slot and the reduction
// merges in chunk order, steal-on and steal-off produce bit-identical
// objectives and op counts — this bench asserts that while measuring what
// stealing buys: the per-worker busy-time spread (the load-balance
// evidence; wall-clock speedup additionally needs multi-core hardware —
// the dev container is single-core, see ROADMAP).
//
//   bench_skew_stealing [--threads=4] [--s-rows=60000] [--r-rows=300]
//                       [--morsel-rows=1024] [--zipf10=0,10,16]
//                       [--iters=3] [--json=PATH]
// (--zipf10 lists Zipf exponents in tenths; 0 = the uniform baseline. A
// single-giant-run dataset is always appended as the worst case.)

#include <cmath>
#include <cstdio>
#include <string>
#include <tuple>
#include <vector>

#include "bench_util.h"
#include "data/synthetic.h"

namespace factorml::bench {
namespace {

struct BusySpread {
  double min_s = 0.0, max_s = 0.0, spread = 0.0;  // spread = 1 - min/max
};

BusySpread Spread(const core::TrainReport& r) {
  BusySpread s;
  std::tie(s.min_s, s.max_s) = r.BusyRange();
  s.spread = s.max_s > 0.0 ? 1.0 - s.min_s / s.max_s : 0.0;
  return s;
}

int Main(int argc, char** argv) {
  ArgParser args(argc, argv);
  ApplyCommonBenchFlags(args);
  const int threads = args.GetThreads(4);
  const int64_t s_rows = args.GetInt("s-rows", 60000);
  const int64_t r_rows = args.GetInt("r-rows", 300);
  const int64_t morsel_rows = args.GetMorselRows(1024);
  const int iters = static_cast<int>(args.GetInt("iters", 3));
  std::vector<int64_t> zipf_tenths = args.GetIntList("zipf10", {0, 10, 16});
  JsonReport json("skew_stealing", args);

  std::printf(
      "k-means (factorized) on %lld fact rows over %lld FK1 runs, "
      "threads=%d, morsel-rows=%lld\n",
      static_cast<long long>(s_rows), static_cast<long long>(r_rows), threads,
      static_cast<long long>(morsel_rows));
  std::printf("%-12s %-9s %10s %10s %10s %9s %8s\n", "runs", "steal",
              "wall(s)", "busy_min", "busy_max", "spread", "steals");

  // Zipf sweep plus the single-giant-run worst case.
  std::vector<std::pair<std::string, data::SyntheticSpec>> datasets;
  for (const int64_t z10 : zipf_tenths) {
    data::SyntheticSpec spec;
    spec.s_rows = s_rows;
    spec.s_feats = 4;
    spec.attrs = {data::AttributeSpec{r_rows, 4}};
    if (z10 == 0) {
      spec.run_dist = data::RunDist::kUniform;
      datasets.emplace_back("uniform", spec);
    } else {
      spec.run_dist = data::RunDist::kZipf;
      spec.zipf_s = static_cast<double>(z10) / 10.0;
      datasets.emplace_back("zipf_" + std::to_string(z10 / 10) + "." +
                                std::to_string(z10 % 10),
                            spec);
    }
  }
  {
    data::SyntheticSpec spec;
    spec.s_rows = s_rows;
    spec.s_feats = 4;
    spec.attrs = {data::AttributeSpec{r_rows, 4}};
    spec.run_dist = data::RunDist::kSingleGiant;
    datasets.emplace_back("single_giant", spec);
  }

  for (auto& [name, spec] : datasets) {
    BenchDir dir;
    spec.dir = dir.str();
    storage::BufferPool pool(4096);
    auto rel_or = data::GenerateSynthetic(spec, &pool);
    if (!rel_or.ok()) Die(rel_or.status());
    const auto rel = std::move(rel_or).value();

    kmeans::KmeansOptions opt;
    opt.num_clusters = 5;
    opt.max_iters = iters;
    opt.temp_dir = dir.str();
    opt.threads = threads;
    opt.morsel_rows = morsel_rows;

    core::TrainReport reports[2];
    for (const bool steal : {false, true}) {
      opt.steal = steal;
      pool.Clear();
      auto m = core::TrainKmeans(rel, opt, core::Algorithm::kFactorized,
                                 &pool, &reports[steal ? 1 : 0]);
      if (!m.ok()) Die(m.status());
      const core::TrainReport& r = reports[steal ? 1 : 0];
      const BusySpread s = Spread(r);
      std::printf("%-12s %-9s %10.3f %10.4f %10.4f %8.1f%% %8llu\n",
                  name.c_str(), steal ? "on" : "off", r.wall_seconds, s.min_s,
                  s.max_s, 100.0 * s.spread,
                  static_cast<unsigned long long>(r.steals));
      json.Add(name, steal ? "steal_on" : "steal_off", r);
    }
    // The determinism contract, asserted where it matters most: heavy
    // skew, live stealing — identical bits or the bench fails.
    if (reports[0].final_objective != reports[1].final_objective ||
        reports[0].ops.mults != reports[1].ops.mults ||
        reports[0].ops.adds != reports[1].ops.adds) {
      std::fprintf(stderr,
                   "PARITY VIOLATION on %s: steal-on result differs from "
                   "steal-off (objective %a vs %a)\n",
                   name.c_str(), reports[0].final_objective,
                   reports[1].final_objective);
      return 1;
    }
  }
  std::printf(
      "steal-on == steal-off verified bit-identical (objective + op "
      "counts) on every dataset\n");
  std::printf(
      "note: on a single hardware core the OS serializes workers, so busy "
      "spread reflects wake-up order (late workers find the queue already "
      "drained); balance and wall-clock gains need multi-core hardware\n");
  return 0;
}

}  // namespace
}  // namespace factorml::bench

int main(int argc, char** argv) { return factorml::bench::Main(argc, argv); }

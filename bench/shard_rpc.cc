// Process shard backend cost model: what the socket seam adds on top of
// the in-process shard plane.
//
// Three measurements per shard count, all on the same GMM training run:
//   1) frame codec microbench — EncodeFrame + byte-split FrameDecoder
//      reassembly latency at ShardDelta-sized payloads (the per-frame CPU
//      tax both ends pay);
//   2) the in-process backend (--shard-backend=inproc), the zero-copy
//      baseline;
//   3) the process backend — real factormld workers over Unix-domain
//      sockets — with its wire volume (net.bytes_sent/recv) and delta
//      frame count read from the obs registry.
// The run fails on any parity violation: the process backend must
// reproduce the inproc objective and op counts bit for bit, else the
// seam is broken and no timing matters. Recorded as BENCH_shard_rpc.json.
//
//   bench_shard_rpc [--threads=2] [--s-rows=20000] [--r-rows=300]
//                   [--morsel-rows=1024] [--shards-list=2,4] [--iters=2]
//                   [--json=PATH]

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench_util.h"
#include "common/stopwatch.h"
#include "data/synthetic.h"
#include "net/frame.h"

namespace factorml::bench {
namespace {

bool BitEq(double a, double b) {
  return std::memcmp(&a, &b, sizeof(double)) == 0;
}

uint64_t NetCounter(const char* name) {
  return obs::Registry::Instance().GetCounter(name)->Value();
}

/// Round-trips `frames` frames of `payload_bytes` through EncodeFrame and
/// a FrameDecoder fed in 4 KiB slices (the socket's eye view). Returns
/// microseconds per frame.
double FrameRoundTripMicros(size_t payload_bytes, int frames) {
  std::string payload(payload_bytes, '\0');
  for (size_t i = 0; i < payload.size(); ++i) {
    payload[i] = static_cast<char>(i * 31);
  }
  Stopwatch watch;
  size_t decoded = 0;
  for (int i = 0; i < frames; ++i) {
    const std::string wire =
        net::EncodeFrame(static_cast<uint32_t>(i), payload);
    net::FrameDecoder dec;
    for (size_t off = 0; off < wire.size(); off += 4096) {
      dec.Feed(wire.data() + off, std::min<size_t>(4096, wire.size() - off));
    }
    net::Frame f;
    bool got = false;
    if (!dec.Next(&f, &got).ok() || !got) Die(Status::Internal("codec"));
    decoded += f.payload.size();
  }
  if (decoded != payload_bytes * static_cast<size_t>(frames)) {
    Die(Status::Internal("codec dropped bytes"));
  }
  return watch.ElapsedSeconds() * 1e6 / frames;
}

int Main(int argc, char** argv) {
  ArgParser args(argc, argv);
  ApplyCommonBenchFlags(args, "shard_rpc");
  const int threads = args.GetThreads(2);
  const int64_t s_rows = args.GetInt("s-rows", 20000);
  const int64_t r_rows = args.GetInt("r-rows", 300);
  const int64_t morsel_rows = args.GetMorselRows(1024);
  const int iters = static_cast<int>(args.GetInt("iters", 2));
  const std::vector<int64_t> shard_counts =
      args.GetIntList("shards-list", {2, 4});
  JsonReport json("shard_rpc", args);

  std::printf("frame codec (encode + 4KiB-sliced decode):\n");
  std::printf("%-14s %14s\n", "payload", "us/frame");
  for (const size_t bytes : {size_t{1} << 10, size_t{64} << 10,
                             size_t{1} << 20, size_t{8} << 20}) {
    std::printf("%-14zu %14.2f\n", bytes,
                FrameRoundTripMicros(bytes, bytes >= (1u << 20) ? 32 : 256));
  }

  BenchDir dir;
  data::SyntheticSpec spec;
  spec.dir = dir.str();
  spec.s_rows = s_rows;
  spec.s_feats = 4;
  spec.attrs = {data::AttributeSpec{r_rows, 4}};
  storage::BufferPool pool(4096);
  auto rel_or = data::GenerateSynthetic(spec, &pool);
  if (!rel_or.ok()) Die(rel_or.status());
  const auto rel = std::move(rel_or).value();

  gmm::GmmOptions opt;
  opt.num_components = 3;
  opt.max_iters = iters;
  opt.temp_dir = dir.str();
  opt.threads = threads;
  opt.morsel_rows = morsel_rows;

  std::printf(
      "\nGMM factorized, %lld fact rows, threads=%d: inproc vs process "
      "workers over unix sockets\n",
      static_cast<long long>(s_rows), threads);
  std::printf("%-8s %12s %12s %10s %12s %12s\n", "shards", "inproc(s)",
              "process(s)", "overhead", "wire_MB", "delta_frames");

  for (const int64_t shards : shard_counts) {
    opt.shards = static_cast<int>(shards);
    opt.shard_backend = "inproc";
    pool.Clear();
    core::TrainReport in_r;
    auto in_params =
        core::TrainGmm(rel, opt, core::Algorithm::kFactorized, &pool, &in_r);
    if (!in_params.ok()) Die(in_params.status());
    json.Add("inproc", "shards_" + std::to_string(shards), in_r);

    opt.shard_backend = "process";
    pool.Clear();
    const uint64_t sent0 = NetCounter("net.bytes_sent");
    const uint64_t recv0 = NetCounter("net.bytes_recv");
    const uint64_t deltas0 = NetCounter("pipeline.shard_deltas");
    core::TrainReport pr_r;
    auto pr_params =
        core::TrainGmm(rel, opt, core::Algorithm::kFactorized, &pool, &pr_r);
    if (!pr_params.ok()) Die(pr_params.status());
    json.Add("process", "shards_" + std::to_string(shards), pr_r);
    const double wire_mb =
        static_cast<double>((NetCounter("net.bytes_sent") - sent0) +
                            (NetCounter("net.bytes_recv") - recv0)) /
        (1024.0 * 1024.0);
    const uint64_t delta_frames = NetCounter("pipeline.shard_deltas") - deltas0;

    if (!BitEq(pr_r.final_objective, in_r.final_objective) ||
        pr_r.ops.mults != in_r.ops.mults || pr_r.ops.adds != in_r.ops.adds ||
        pr_r.ops.subs != in_r.ops.subs || pr_r.ops.exps != in_r.ops.exps) {
      std::fprintf(stderr,
                   "PARITY VIOLATION at shards=%lld: process objective %a "
                   "vs inproc %a\n",
                   static_cast<long long>(shards), pr_r.final_objective,
                   in_r.final_objective);
      return 1;
    }

    const double overhead = in_r.wall_seconds > 0.0
                                ? pr_r.wall_seconds / in_r.wall_seconds
                                : 0.0;
    std::printf("%-8lld %12.3f %12.3f %9.2fx %12.2f %12llu\n",
                static_cast<long long>(shards), in_r.wall_seconds,
                pr_r.wall_seconds, overhead, wire_mb,
                static_cast<unsigned long long>(delta_frames));
  }
  std::printf(
      "process backend verified bit-identical to inproc at every shard "
      "count (objective + op counts)\n");
  return 0;
}

}  // namespace
}  // namespace factorml::bench

int main(int argc, char** argv) { return factorml::bench::Main(argc, argv); }

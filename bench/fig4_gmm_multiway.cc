// Reproduces Figure 4 of the paper: GMM training over a multi-way join
// (S |><| R1 |><| R2, the Movies-3way style workload with synthetic tuples
// injected into R1), varying the tuple ratio rr = nS/nR1 (--part=rr), the
// width dR1 of the grown attribute table (--part=dr1), and the number of
// mixture components K (--part=k).

#include <cstdio>
#include <string>

#include "bench_util.h"
#include "common/flags.h"
#include "core/factorml.h"

namespace factorml::bench {
namespace {

join::NormalizedRelations Generate(const std::string& dir, int64_t n_s,
                                   int64_t n_r1, size_t d_r1, int64_t n_r2,
                                   size_t d_r2, storage::BufferPool* pool) {
  data::SyntheticSpec spec;
  spec.dir = dir;
  spec.name = "fig4_" + std::to_string(n_s) + "_" + std::to_string(d_r1);
  spec.s_rows = n_s;
  spec.s_feats = 5;
  spec.attrs = {data::AttributeSpec{n_r1, d_r1},
                data::AttributeSpec{n_r2, d_r2}};
  spec.seed = 42;
  auto rel = data::GenerateSynthetic(spec, pool);
  if (!rel.ok()) Die(rel.status());
  return std::move(rel).value();
}

int Main(int argc, char** argv) {
  ArgParser args(argc, argv);
  ApplyCommonBenchFlags(args);
  JsonReport json("fig4_gmm_multiway", args);
  const std::string part = args.GetString("part", "all");
  const int64_t n_r1 = args.GetInt("nr1", 200);
  const int64_t n_r2 = args.GetInt("nr2", 200);
  const size_t d_r2 = static_cast<size_t>(args.GetInt("dr2", 5));
  const int iters = static_cast<int>(args.GetInt("iters", 2));

  BenchDir dir;
  storage::BufferPool pool(4096);
  gmm::GmmOptions opt;
  opt.max_iters = iters;
  opt.temp_dir = dir.str();

  std::printf("== Figure 4: GMM over a 3-way join (nR1=%lld, nR2=%lld, "
              "dS=5, dR2=%zu, iters=%d) ==\n",
              static_cast<long long>(n_r1), static_cast<long long>(n_r2),
              d_r2, iters);

  if (part == "rr" || part == "all") {
    std::printf("\n-- Fig 4(a): varying rr = nS/nR1 (dR1=10, K=5) --\n");
    PrintTrioHeader("rr");
    for (const int64_t rr : args.GetIntList("rr", {20, 50, 100, 200})) {
      auto rel =
          Generate(dir.str(), rr * n_r1, n_r1, 10, n_r2, d_r2, &pool);
      opt.num_components = 5;
      EmitTrioRow(&json, "fig4a_rr", std::to_string(rr),
                  RunGmmAll(rel, opt, &pool));
    }
  }

  if (part == "dr1" || part == "all") {
    std::printf("\n-- Fig 4(b): varying dR1 (rr=100, K=5) --\n");
    PrintTrioHeader("dR1");
    for (const int64_t d_r1 : args.GetIntList("dr1", {5, 10, 20, 30})) {
      auto rel = Generate(dir.str(), 100 * n_r1, n_r1,
                          static_cast<size_t>(d_r1), n_r2, d_r2, &pool);
      opt.num_components = 5;
      EmitTrioRow(&json, "fig4b_dr1", std::to_string(d_r1),
                  RunGmmAll(rel, opt, &pool));
    }
  }

  if (part == "k" || part == "all") {
    std::printf("\n-- Fig 4(c): varying K (rr=100, dR1=10) --\n");
    PrintTrioHeader("K");
    auto rel = Generate(dir.str(), 100 * n_r1, n_r1, 10, n_r2, d_r2, &pool);
    for (const int64_t k : args.GetIntList("k", {2, 4, 6, 8})) {
      opt.num_components = static_cast<size_t>(k);
      EmitTrioRow(&json, "fig4c_k", std::to_string(k),
                  RunGmmAll(rel, opt, &pool));
    }
  }
  return 0;
}

}  // namespace
}  // namespace factorml::bench

int main(int argc, char** argv) { return factorml::bench::Main(argc, argv); }

// Ablation for the factorized feature-statistics extension: input
// standardization (which the paper notes is compatible with its approach,
// Sec. VI-A) needs per-column means/stddevs of the joined table. The
// factorized aggregate computes them from the base relations — one scan of
// S plus one scan of each attribute table — instead of assembling every
// joined tuple. This bench sweeps the tuple ratio and prints time and op
// savings, mirroring the structure of the trainers' savings.

#include <cmath>
#include <cstdio>

#include "bench_util.h"
#include "common/flags.h"
#include "common/stopwatch.h"
#include "core/factorml.h"

namespace factorml::bench {
namespace {

int Main(int argc, char** argv) {
  ArgParser args(argc, argv);
  ApplyCommonBenchFlags(args);
  const int64_t n_r = args.GetInt("nr", 500);
  const int64_t d_s = args.GetInt("ds", 5);
  const int64_t d_r = args.GetInt("dr", 20);

  BenchDir dir;
  storage::BufferPool pool(4096);

  std::printf("== Extension ablation: factorized joined-table feature "
              "statistics (nR=%lld, dS=%lld, dR=%lld) ==\n\n",
              static_cast<long long>(n_r), static_cast<long long>(d_s),
              static_cast<long long>(d_r));
  std::printf("%6s %12s %12s %10s %10s\n", "rr", "direct(s)",
              "factored(s)", "speedup", "ops ratio");
  for (const int64_t rr : {20LL, 100LL, 500LL}) {
    data::SyntheticSpec spec;
    spec.dir = dir.str();
    spec.name = "fs_" + std::to_string(rr);
    spec.s_rows = rr * n_r;
    spec.s_feats = static_cast<size_t>(d_s);
    spec.attrs = {data::AttributeSpec{n_r, static_cast<size_t>(d_r)}};
    spec.seed = 6;
    auto rel_or = data::GenerateSynthetic(spec, &pool);
    if (!rel_or.ok()) Die(rel_or.status());
    const auto& rel = rel_or.value();

    pool.Clear();
    ResetGlobalOps();
    Stopwatch w1;
    auto direct = core::ComputeJoinedFeatureStatsDirect(rel, &pool);
    if (!direct.ok()) Die(direct.status());
    const double t_direct = w1.ElapsedSeconds();
    const uint64_t ops_direct = GlobalOps().Total();

    pool.Clear();
    ResetGlobalOps();
    Stopwatch w2;
    auto fact = core::ComputeJoinedFeatureStats(rel, &pool);
    if (!fact.ok()) Die(fact.status());
    const double t_fact = w2.ElapsedSeconds();
    const uint64_t ops_fact = GlobalOps().Total();

    // Exactness self-check.
    double drift = 0.0;
    for (size_t j = 0; j < fact->dims(); ++j) {
      drift = std::max(drift, std::fabs(fact->mean[j] - direct->mean[j]));
    }
    if (drift > 1e-6) {
      std::fprintf(stderr, "WARNING: stats drift %.3g\n", drift);
    }

    std::printf("%6lld %12.4f %12.4f %10.2f %10.2f\n",
                static_cast<long long>(rr), t_direct, t_fact,
                t_direct / t_fact,
                static_cast<double>(ops_direct) /
                    static_cast<double>(ops_fact));
  }
  return 0;
}

}  // namespace
}  // namespace factorml::bench

int main(int argc, char** argv) { return factorml::bench::Main(argc, argv); }

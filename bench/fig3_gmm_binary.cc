// Reproduces Figure 3 of the paper: GMM training time over a binary
// PK/FK join, comparing M-GMM / S-GMM / F-GMM while varying
//   (a) the tuple ratio rr = nS / nR   (--part=rr)
//   (b) the attribute-table width dR   (--part=dr)
//   (c) the number of components K     (--part=k)
// Defaults are scaled down from the paper's nS = 10^6 / nR = 1000 so the
// full sweep runs in minutes; pass --scale_rows to change. The shape of
// the comparison (who wins and how the gap grows) is scale-invariant.

#include <cstdio>
#include <string>

#include "bench_util.h"
#include "common/flags.h"
#include "core/factorml.h"

namespace factorml::bench {
namespace {

join::NormalizedRelations Generate(const std::string& dir, int64_t n_s,
                                   int64_t n_r, size_t d_s, size_t d_r,
                                   storage::BufferPool* pool) {
  data::SyntheticSpec spec;
  spec.dir = dir;
  spec.name = "fig3_" + std::to_string(n_s) + "_" + std::to_string(d_r);
  spec.s_rows = n_s;
  spec.s_feats = d_s;
  spec.attrs = {data::AttributeSpec{n_r, d_r}};
  spec.seed = 42;
  auto rel = data::GenerateSynthetic(spec, pool);
  if (!rel.ok()) Die(rel.status());
  return std::move(rel).value();
}

int Main(int argc, char** argv) {
  ArgParser args(argc, argv);
  ApplyCommonBenchFlags(args, "fig3_gmm_binary");
  JsonReport json("fig3_gmm_binary", args);
  const std::string part = args.GetString("part", "all");
  const int64_t n_r = args.GetInt("nr", 200);
  const size_t d_s = static_cast<size_t>(args.GetInt("ds", 5));
  const int iters = static_cast<int>(args.GetInt("iters", 2));
  const double row_scale = args.GetDouble("scale_rows", 1.0);

  BenchDir dir;
  storage::BufferPool pool(4096);
  gmm::GmmOptions opt;
  opt.max_iters = iters;
  opt.temp_dir = dir.str();

  std::printf("== Figure 3: GMM over a binary join (nR=%lld, dS=%zu, "
              "iters=%d) ==\n",
              static_cast<long long>(n_r), d_s, iters);

  if (part == "rr" || part == "all") {
    for (const size_t d_r : {size_t{5}, size_t{15}}) {
      std::printf("\n-- Fig 3(a): varying rr (dR=%zu, K=5) --\n", d_r);
      PrintTrioHeader("rr");
      for (const int64_t rr : args.GetIntList("rr", {20, 50, 100, 200})) {
        const int64_t n_s =
            static_cast<int64_t>(rr * n_r * row_scale);
        auto rel = Generate(dir.str(), n_s, n_r, d_s, d_r, &pool);
        opt.num_components = 5;
        EmitTrioRow(&json, "fig3a_rr_dr" + std::to_string(d_r),
                    std::to_string(rr), RunGmmAll(rel, opt, &pool));
      }
    }
  }

  if (part == "dr" || part == "all") {
    for (const int64_t rr : {int64_t{50}, int64_t{200}}) {
      std::printf("\n-- Fig 3(b): varying dR (rr=%lld, K=5) --\n",
                  static_cast<long long>(rr));
      PrintTrioHeader("dR");
      for (const int64_t d_r : args.GetIntList("dr", {5, 10, 15, 25, 40})) {
        const int64_t n_s = static_cast<int64_t>(rr * n_r * row_scale);
        auto rel = Generate(dir.str(), n_s, n_r, d_s,
                            static_cast<size_t>(d_r), &pool);
        opt.num_components = 5;
        EmitTrioRow(&json, "fig3b_dr_rr" + std::to_string(rr),
                    std::to_string(d_r), RunGmmAll(rel, opt, &pool));
      }
    }
  }

  if (part == "k" || part == "all") {
    std::printf("\n-- Fig 3(c): varying K (rr=100, dR=15) --\n");
    PrintTrioHeader("K");
    const int64_t n_s = static_cast<int64_t>(100 * n_r * row_scale);
    auto rel = Generate(dir.str(), n_s, n_r, d_s, 15, &pool);
    for (const int64_t k : args.GetIntList("k", {2, 4, 6, 8})) {
      opt.num_components = static_cast<size_t>(k);
      EmitTrioRow(&json, "fig3c_k", std::to_string(k),
                  RunGmmAll(rel, opt, &pool));
    }
  }
  return 0;
}

}  // namespace
}  // namespace factorml::bench

int main(int argc, char** argv) { return factorml::bench::Main(argc, argv); }

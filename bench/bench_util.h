#ifndef FACTORML_BENCH_BENCH_UTIL_H_
#define FACTORML_BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <filesystem>
#include <random>
#include <string>
#include <vector>

#include "common/flags.h"
#include "core/factorml.h"
#include "exec/thread_pool.h"

namespace factorml::bench {

/// Applies the flags every bench binary shares: `--threads` (worker count
/// for the exec/ parallel runtime; default 1 = the exact serial
/// reproduction) and `--io_delay_us` (simulated device latency per page
/// transfer). Call first thing in main().
inline void ApplyCommonBenchFlags(const ArgParser& args) {
  exec::SetDefaultThreads(args.GetThreads(1));
  if (args.Has("io_delay_us")) {
    const auto us = static_cast<uint64_t>(args.GetInt("io_delay_us", 0));
    storage::SetSimulatedIoLatencyMicros(us, us);
  }
}

/// Scratch directory for generated relations and materialized tables;
/// removed on destruction.
class BenchDir {
 public:
  BenchDir() {
    std::random_device rd;
    path_ = std::filesystem::temp_directory_path() /
            ("factorml_bench_" + std::to_string(rd()));
    std::filesystem::create_directories(path_);
  }
  ~BenchDir() {
    std::error_code ec;
    std::filesystem::remove_all(path_, ec);
  }
  std::string str() const { return path_.string(); }

 private:
  std::filesystem::path path_;
};

/// Reports for one M/S/F comparison (one row of a paper figure/table).
struct Trio {
  core::TrainReport m, s, f;
};

inline void Die(const Status& st) {
  std::fprintf(stderr, "bench failed: %s\n", st.ToString().c_str());
  std::exit(1);
}

/// Runs all three GMM strategies on the same relations. `pool` is cleared
/// between runs so every algorithm starts cold.
inline Trio RunGmmAll(const join::NormalizedRelations& rel,
                      const gmm::GmmOptions& options,
                      storage::BufferPool* pool) {
  Trio t;
  pool->Clear();
  auto m = core::TrainGmm(rel, options, core::Algorithm::kMaterialized, pool,
                          &t.m);
  if (!m.ok()) Die(m.status());
  pool->Clear();
  auto s = core::TrainGmm(rel, options, core::Algorithm::kStreaming, pool,
                          &t.s);
  if (!s.ok()) Die(s.status());
  pool->Clear();
  auto f = core::TrainGmm(rel, options, core::Algorithm::kFactorized, pool,
                          &t.f);
  if (!f.ok()) Die(f.status());
  // Exactness self-check: the whole point of the factorization.
  const double diff = gmm::GmmParams::MaxAbsDiff(m.value(), f.value());
  if (diff > 1e-4) {
    std::fprintf(stderr, "WARNING: M/F parameter drift %.3g\n", diff);
  }
  return t;
}

inline Trio RunNnAll(const join::NormalizedRelations& rel,
                     const nn::NnOptions& options,
                     storage::BufferPool* pool) {
  Trio t;
  pool->Clear();
  auto m = core::TrainNn(rel, options, core::Algorithm::kMaterialized, pool,
                         &t.m);
  if (!m.ok()) Die(m.status());
  pool->Clear();
  auto s = core::TrainNn(rel, options, core::Algorithm::kStreaming, pool,
                         &t.s);
  if (!s.ok()) Die(s.status());
  pool->Clear();
  auto f = core::TrainNn(rel, options, core::Algorithm::kFactorized, pool,
                         &t.f);
  if (!f.ok()) Die(f.status());
  const double diff = nn::Mlp::MaxAbsDiffParams(m.value(), f.value());
  if (diff > 1e-4) {
    std::fprintf(stderr, "WARNING: M/F parameter drift %.3g\n", diff);
  }
  return t;
}

inline void PrintTrioHeader(const char* sweep_col) {
  std::printf("%-14s %10s %10s %10s %8s %8s %10s %12s\n", sweep_col,
              "M(s)", "S(s)", "F(s)", "S/F", "M/F", "mult S/F",
              "pages M/F");
}

inline void PrintTrioRow(const std::string& sweep_val, const Trio& t) {
  const double sf = t.f.wall_seconds > 0 ? t.s.wall_seconds / t.f.wall_seconds
                                         : 0.0;
  const double mf = t.f.wall_seconds > 0 ? t.m.wall_seconds / t.f.wall_seconds
                                         : 0.0;
  const double mult_ratio =
      t.f.ops.mults > 0 ? static_cast<double>(t.s.ops.mults) /
                              static_cast<double>(t.f.ops.mults)
                        : 0.0;
  const double page_ratio =
      t.f.io.pages_read > 0
          ? static_cast<double>(t.m.io.pages_read + t.m.io.pages_written) /
                static_cast<double>(t.f.io.pages_read)
          : 0.0;
  std::printf("%-14s %10.3f %10.3f %10.3f %8.2f %8.2f %10.2f %12.2f\n",
              sweep_val.c_str(), t.m.wall_seconds, t.s.wall_seconds,
              t.f.wall_seconds, sf, mf, mult_ratio, page_ratio);
}

}  // namespace factorml::bench

#endif  // FACTORML_BENCH_BENCH_UTIL_H_

#ifndef FACTORML_BENCH_BENCH_UTIL_H_
#define FACTORML_BENCH_BENCH_UTIL_H_

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <iomanip>
#include <random>
#include <sstream>
#include <string>
#include <vector>

#include "common/flags.h"
#include "common/json.h"
#include "core/factorml.h"
#include "exec/thread_pool.h"
#include "obs/manifest.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace factorml::bench {

/// Applies the flags every bench binary shares: `--threads` (worker count
/// for the exec/ parallel runtime; default 1 = the exact serial
/// reproduction), `--io_delay_us` (simulated device latency per page
/// transfer) and `--trace=PATH` / `--trace-buffer-kb=N` (span tracing;
/// the Chrome trace-event JSON — with the run manifest as otherData — is
/// flushed at exit). Call first thing in main().
inline void ApplyCommonBenchFlags(const ArgParser& args,
                                  const char* bench_name = "bench") {
  exec::SetDefaultThreads(args.GetThreads(1));
  if (args.Has("io_delay_us")) {
    const auto us = static_cast<uint64_t>(args.GetInt("io_delay_us", 0));
    storage::SetSimulatedIoLatencyMicros(us, us);
  }
  const std::string trace_path = args.GetTracePath();
  if (!trace_path.empty()) {
    // atexit keeps the flush after every sweep row, whichever return or
    // Die() path ends the binary. The statics hand the lambda its state
    // (atexit takes a plain function pointer).
    static std::string path, manifest;
    path = trace_path;
    manifest = obs::RunManifest::FromArgs(bench_name, args).ToJson();
    obs::Tracer::Instance().Start(
        static_cast<size_t>(args.GetTraceBufferKb()));
    std::atexit([] {
      obs::Tracer::Instance().Stop();
      const Status st = obs::Tracer::Instance().WriteJson(path, manifest);
      if (!st.ok()) {
        std::fprintf(stderr, "trace flush failed: %s\n",
                     st.ToString().c_str());
      }
    });
  }
}

/// Scratch directory for generated relations and materialized tables;
/// removed on destruction.
class BenchDir {
 public:
  BenchDir() {
    std::random_device rd;
    path_ = std::filesystem::temp_directory_path() /
            ("factorml_bench_" + std::to_string(rd()));
    std::filesystem::create_directories(path_);
  }
  ~BenchDir() {
    std::error_code ec;
    std::filesystem::remove_all(path_, ec);
  }
  std::string str() const { return path_.string(); }

 private:
  std::filesystem::path path_;
};

/// Reports for one M/S/F comparison (one row of a paper figure/table).
struct Trio {
  core::TrainReport m, s, f;
};

inline void Die(const Status& st) {
  std::fprintf(stderr, "bench failed: %s\n", st.ToString().c_str());
  std::exit(1);
}

/// Runs one model family under all three strategies on the same relations
/// (`pool` cleared between runs so every algorithm starts cold) and
/// self-checks M/F parameter drift — the exactness property the
/// factorization promises. `train` is a core::Train* entry point;
/// `max_abs_diff` compares the M and F models.
template <typename Options, typename TrainFn, typename DiffFn>
inline Trio RunAllStrategies(const join::NormalizedRelations& rel,
                             const Options& options,
                             storage::BufferPool* pool, TrainFn train,
                             DiffFn max_abs_diff) {
  Trio t;
  pool->Clear();
  auto m = train(rel, options, core::Algorithm::kMaterialized, pool, &t.m);
  if (!m.ok()) Die(m.status());
  pool->Clear();
  auto s = train(rel, options, core::Algorithm::kStreaming, pool, &t.s);
  if (!s.ok()) Die(s.status());
  pool->Clear();
  auto f = train(rel, options, core::Algorithm::kFactorized, pool, &t.f);
  if (!f.ok()) Die(f.status());
  const double diff = max_abs_diff(m.value(), f.value());
  if (diff > 1e-4) {
    std::fprintf(stderr, "WARNING: M/F parameter drift %.3g\n", diff);
  }
  return t;
}

inline Trio RunGmmAll(const join::NormalizedRelations& rel,
                      const gmm::GmmOptions& options,
                      storage::BufferPool* pool) {
  return RunAllStrategies(
      rel, options, pool,
      [](const join::NormalizedRelations& r, const gmm::GmmOptions& o,
         core::Algorithm a, storage::BufferPool* p, core::TrainReport* rep) {
        return core::TrainGmm(r, o, a, p, rep);
      },
      &gmm::GmmParams::MaxAbsDiff);
}

inline Trio RunNnAll(const join::NormalizedRelations& rel,
                     const nn::NnOptions& options,
                     storage::BufferPool* pool) {
  return RunAllStrategies(
      rel, options, pool,
      [](const join::NormalizedRelations& r, const nn::NnOptions& o,
         core::Algorithm a, storage::BufferPool* p, core::TrainReport* rep) {
        return core::TrainNn(r, o, a, p, rep);
      },
      &nn::Mlp::MaxAbsDiffParams);
}

/// Machine-readable run recorder behind the shared `--json=PATH` flag:
/// every recorded TrainReport becomes one JSON object, written as an array
/// on destruction. Lets CI and scripts track perf trajectories as
/// BENCH_*.json without parsing the human tables.
///
/// Schema — the file is a JSON array; every element is one training run:
///   bench                string   bench binary name (constructor arg)
///   section, value       string   sweep coordinates (e.g. dataset, knob)
///   algorithm            string   report tag, "<M|S|F>-<MODEL>"
///   wall_seconds         number   whole-run wall time
///   materialize_seconds  number   M-* join+write share of wall_seconds
///   threads              int      exec/ workers used
///   iterations           int      EM iterations / SGD epochs run
///   objective            number|null  final objective (null = non-finite)
///   mults, adds, subs, exps   int   op-count deltas over the run
///   pages_read, pages_written int   physical page I/O over the run
///   prefetch_reads, prefetch_hits int  async I/O plane split
///   stall_seconds        number   demand-read stall time
///   morsel_chunks        int      chunk count (0 = legacy static morsels)
///   steals               int      cross-worker chunk acquisitions
///   shards               int      effective rid-range shard count (1 =
///                                 unsharded; field always present)
///   busy_min_seconds, busy_max_seconds  number  per-worker busy range
///                                 (present when the run recorded it)
///   shard_scan_seconds   [number] per-shard scan wall time, shard-id
///                                 order (present when shards > 1)
///   shard_stall_seconds  [number] per-shard demand-stall time (ditto)
///   shard_pages_read     [int]    per-shard physical reads (ditto)
///   phases               object   per-phase parallel wall seconds keyed
///                                 by phase name (present when the run
///                                 recorded phase timings)
///   manifest             object   RunManifest::ToJson() — the resolved
///                                 config + git describe of this invocation
///                                 (identical across the file's rows)
///   metrics              object   obs registry delta over the run
///                                 (SnapshotToJson: counters flat,
///                                 histograms as .count/.sum_micros/
///                                 .mean_micros — timings only, never
///                                 compared bitwise)
class JsonReport {
 public:
  JsonReport(const char* bench_name, const ArgParser& args)
      : bench_(bench_name),
        path_(args.GetString("json", "")),
        manifest_(obs::RunManifest::FromArgs(bench_name, args).ToJson()) {}
  ~JsonReport() { Write(); }
  JsonReport(const JsonReport&) = delete;
  JsonReport& operator=(const JsonReport&) = delete;

  bool enabled() const { return !path_.empty(); }

  /// Records one TrainReport under a sweep section and value. The file is
  /// rewritten after every row, so rows recorded before a Die()/exit on a
  /// later sweep run survive.
  void Add(const std::string& section, const std::string& value,
           const core::TrainReport& r) {
    if (!enabled()) return;
    std::ostringstream row;
    row << "  {\"bench\": \"" << bench_ << "\", \"section\": \"" << section
        << "\", \"value\": \"" << value << "\", \"algorithm\": \""
        << r.algorithm << "\", \"wall_seconds\": " << JsonDouble(r.wall_seconds)
        << ", \"materialize_seconds\": " << JsonDouble(r.materialize_seconds)
        << ", \"threads\": " << r.threads
        << ", \"iterations\": " << r.iterations << ", \"objective\": "
        // JSON has no inf/nan literals; a diverged run records null.
        << JsonDouble(r.final_objective);
    row << ", \"mults\": " << r.ops.mults << ", \"adds\": " << r.ops.adds
        << ", \"subs\": " << r.ops.subs << ", \"exps\": " << r.ops.exps
        << ", \"pages_read\": " << r.io.pages_read
        << ", \"pages_written\": " << r.io.pages_written
        << ", \"prefetch_reads\": " << r.io.prefetch_reads
        << ", \"prefetch_hits\": " << r.io.prefetch_hits
        << ", \"stall_seconds\": "
        << JsonDouble(static_cast<double>(r.io.stall_micros) * 1e-6)
        << ", \"morsel_chunks\": " << r.morsel_chunks
        << ", \"steals\": " << r.steals << ", \"shards\": " << r.shards;
    if (!r.worker_busy_seconds.empty()) {
      const auto [lo, hi] = r.BusyRange();
      row << ", \"busy_min_seconds\": " << JsonDouble(lo)
          << ", \"busy_max_seconds\": " << JsonDouble(hi);
    }
    if (r.shards > 1 && !r.shard_stats.empty()) {
      row << ", \"shard_scan_seconds\": [";
      for (size_t k = 0; k < r.shard_stats.size(); ++k) {
        row << (k > 0 ? ", " : "")
            << JsonDouble(r.shard_stats[k].scan_seconds);
      }
      row << "], \"shard_stall_seconds\": [";
      for (size_t k = 0; k < r.shard_stats.size(); ++k) {
        row << (k > 0 ? ", " : "")
            << JsonDouble(static_cast<double>(r.shard_stats[k].io.stall_micros) *
                          1e-6);
      }
      row << "], \"shard_pages_read\": [";
      for (size_t k = 0; k < r.shard_stats.size(); ++k) {
        row << (k > 0 ? ", " : "") << r.shard_stats[k].io.pages_read;
      }
      row << "]";
    }
    if (!r.phases.empty()) {
      // Per-phase parallel wall timings (first_layer_fwd, w1_grad, e_step,
      // ...) — what the kernel-plane sweeps compare across backends.
      row << ", \"phases\": {";
      for (size_t k = 0; k < r.phases.size(); ++k) {
        row << (k > 0 ? ", " : "") << "\"" << r.phases[k].name
            << "\": " << JsonDouble(r.phases[k].seconds);
      }
      row << "}";
    }
    row << ", \"manifest\": " << manifest_
        << ", \"metrics\": " << obs::SnapshotToJson(r.metrics) << "}";
    rows_.push_back(row.str());
    Write();
  }

  /// Records all three strategies of one sweep row.
  void Add(const std::string& section, const std::string& value,
           const Trio& t) {
    Add(section, value, t.m);
    Add(section, value, t.s);
    Add(section, value, t.f);
  }

  void Write() {
    if (!enabled()) return;
    std::FILE* f = std::fopen(path_.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot write --json=%s\n", path_.c_str());
      return;
    }
    std::fprintf(f, "[\n");
    for (size_t i = 0; i < rows_.size(); ++i) {
      std::fprintf(f, "%s%s\n", rows_[i].c_str(),
                   i + 1 < rows_.size() ? "," : "");
    }
    std::fprintf(f, "]\n");
    std::fclose(f);
  }

 private:
  std::string bench_;
  std::string path_;
  std::string manifest_;
  std::vector<std::string> rows_;
};

inline void PrintTrioHeader(const char* sweep_col) {
  std::printf("%-14s %10s %10s %10s %8s %8s %10s %12s\n", sweep_col,
              "M(s)", "S(s)", "F(s)", "S/F", "M/F", "mult S/F",
              "pages M/F");
}

inline void PrintTrioRow(const std::string& sweep_val, const Trio& t) {
  const double sf = t.f.wall_seconds > 0 ? t.s.wall_seconds / t.f.wall_seconds
                                         : 0.0;
  const double mf = t.f.wall_seconds > 0 ? t.m.wall_seconds / t.f.wall_seconds
                                         : 0.0;
  const double mult_ratio =
      t.f.ops.mults > 0 ? static_cast<double>(t.s.ops.mults) /
                              static_cast<double>(t.f.ops.mults)
                        : 0.0;
  const double page_ratio =
      t.f.io.pages_read > 0
          ? static_cast<double>(t.m.io.pages_read + t.m.io.pages_written) /
                static_cast<double>(t.f.io.pages_read)
          : 0.0;
  std::printf("%-14s %10.3f %10.3f %10.3f %8.2f %8.2f %10.2f %12.2f\n",
              sweep_val.c_str(), t.m.wall_seconds, t.s.wall_seconds,
              t.f.wall_seconds, sf, mf, mult_ratio, page_ratio);
}

/// Prints one sweep row and records it under `--json` in one call.
inline void EmitTrioRow(JsonReport* json, const std::string& section,
                        const std::string& value, const Trio& t) {
  PrintTrioRow(value, t);
  if (json != nullptr) json->Add(section, value, t);
}

}  // namespace factorml::bench

#endif  // FACTORML_BENCH_BENCH_UTIL_H_

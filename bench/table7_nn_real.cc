// Reproduces Table VII of the paper: NN training time (M / S / F) on the
// sparse (one-hot) real-dataset shapes — Walmart(Sparse), Movies(Sparse)
// and Movies-3way. Cardinalities are scaled by --scale (default 0.02).

#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.h"
#include "common/flags.h"
#include "core/factorml.h"

namespace factorml::bench {
namespace {

int Main(int argc, char** argv) {
  ArgParser args(argc, argv);
  ApplyCommonBenchFlags(args);
  const double scale = args.GetDouble("scale", 0.02);
  const int epochs = static_cast<int>(args.GetInt("epochs", 2));
  const size_t nh = static_cast<size_t>(args.GetInt("nh", 50));

  BenchDir dir;
  storage::BufferPool pool(static_cast<size_t>(args.GetInt("pool_pages", 2048)));
  nn::NnOptions opt;
  opt.hidden = {nh};
  opt.epochs = epochs;
  opt.temp_dir = dir.str();

  const std::vector<const char*> rows = {"Walmart-Sparse", "Movies-Sparse",
                                         "Movies-3way"};

  std::printf("== Table VII: NN on real-dataset shapes (scale=%.3f, nh=%zu, "
              "epochs=%d, sigmoid) ==\n",
              scale, nh, epochs);
  PrintTrioHeader("dataset");
  for (const char* name : rows) {
    auto shape_or = data::FindRealShape(name);
    if (!shape_or.ok()) Die(shape_or.status());
    auto rel_or = data::GenerateRealShape(shape_or.value(), dir.str(), &pool,
                                          scale, /*seed=*/42,
                                          /*with_target=*/true);
    if (!rel_or.ok()) Die(rel_or.status());
    PrintTrioRow(name, RunNnAll(rel_or.value(), opt, &pool));
  }
  std::printf(
      "\npaper reference: F-NN is 8.1x (Walmart Sparse), 4.5x (Movies\n"
      "Sparse) and 3.4x (Movies-3way) faster than M-NN on the authors'\n"
      "Python/PostgreSQL stack; our C++ substrate shifts absolute\n"
      "constants but the F column must win throughout.\n");
  return 0;
}

}  // namespace
}  // namespace factorml::bench

int main(int argc, char** argv) { return factorml::bench::Main(argc, argv); }

// Extension ablation (beyond the paper): Sec. VI-A3 argues the backward
// pass offers no computation reuse because the redundancy lies across the
// *columns* of x^T. Grouping by rid shows there is reuse after all: the
// first-layer gradient's R-slice equals sum_rid (sum of the group's
// deltas) x_r^T, replacing nh*dR work per fact tuple with nh work per
// fact tuple plus nh*dR per R tuple. This bench quantifies the win.

#include <cstdio>

#include "bench_util.h"
#include "common/flags.h"
#include "core/factorml.h"

namespace factorml::bench {
namespace {

int Main(int argc, char** argv) {
  ArgParser args(argc, argv);
  ApplyCommonBenchFlags(args);
  const int64_t n_r = args.GetInt("nr", 200);
  const int epochs = static_cast<int>(args.GetInt("epochs", 2));

  BenchDir dir;
  storage::BufferPool pool(4096);

  std::printf("== Extension ablation: grouped backward accumulation in "
              "F-NN (nR=%lld, dS=5, nh=50, epochs=%d) ==\n\n",
              static_cast<long long>(n_r), epochs);
  std::printf("%6s %6s %12s %12s %10s %10s\n", "rr", "dR", "F-NN(s)",
              "F-NN+grp(s)", "mult F/grp", "drift");
  for (const int64_t rr : {50LL, 200LL}) {
    for (const int64_t d_r : {10LL, 30LL}) {
      data::SyntheticSpec spec;
      spec.dir = dir.str();
      spec.name = "gb_" + std::to_string(rr) + "_" + std::to_string(d_r);
      spec.s_rows = rr * n_r;
      spec.s_feats = 5;
      spec.attrs = {data::AttributeSpec{n_r, static_cast<size_t>(d_r)}};
      spec.with_target = true;
      spec.seed = 4;
      auto rel_or = data::GenerateSynthetic(spec, &pool);
      if (!rel_or.ok()) Die(rel_or.status());

      nn::NnOptions opt;
      opt.hidden = {50};
      opt.epochs = epochs;
      opt.temp_dir = dir.str();

      core::TrainReport base, grouped;
      pool.Clear();
      auto f1 = core::TrainNn(rel_or.value(), opt,
                              core::Algorithm::kFactorized, &pool, &base);
      if (!f1.ok()) Die(f1.status());
      opt.grouped_backward = true;
      pool.Clear();
      auto f2 = core::TrainNn(rel_or.value(), opt,
                              core::Algorithm::kFactorized, &pool, &grouped);
      if (!f2.ok()) Die(f2.status());

      const double drift =
          nn::Mlp::MaxAbsDiffParams(f1.value(), f2.value());
      std::printf("%6lld %6lld %12.3f %12.3f %10.2f %10.2e\n",
                  static_cast<long long>(rr), static_cast<long long>(d_r),
                  base.wall_seconds, grouped.wall_seconds,
                  static_cast<double>(base.ops.mults) /
                      static_cast<double>(grouped.ops.mults),
                  drift);
    }
  }
  std::printf("\nthe gradients are identical (drift ~ fp noise); the "
              "grouped variant saves first-layer backward multiplies on "
              "top of the paper's F-NN.\n");
  return 0;
}

}  // namespace
}  // namespace factorml::bench

int main(int argc, char** argv) { return factorml::bench::Main(argc, argv); }

// Reproduces Figure 5 of the paper: NN training time over a binary PK/FK
// join, comparing M-NN / S-NN / F-NN while varying
//   (a) the tuple ratio rr = nS / nR       (--part=rr)
//   (b) the attribute-table width dR       (--part=dr)
//   (c) the number of hidden units nh      (--part=nh)
// Single hidden layer, sigmoid activation, fixed epochs — the paper's
// setup (10 epochs there; 2 by default here, change with --epochs).

#include <cstdio>
#include <string>

#include "bench_util.h"
#include "common/flags.h"
#include "core/factorml.h"

namespace factorml::bench {
namespace {

join::NormalizedRelations Generate(const std::string& dir, int64_t n_s,
                                   int64_t n_r, size_t d_s, size_t d_r,
                                   storage::BufferPool* pool) {
  data::SyntheticSpec spec;
  spec.dir = dir;
  spec.name = "fig5_" + std::to_string(n_s) + "_" + std::to_string(d_r);
  spec.s_rows = n_s;
  spec.s_feats = d_s;
  spec.attrs = {data::AttributeSpec{n_r, d_r}};
  spec.with_target = true;
  spec.seed = 42;
  auto rel = data::GenerateSynthetic(spec, pool);
  if (!rel.ok()) Die(rel.status());
  return std::move(rel).value();
}

int Main(int argc, char** argv) {
  ArgParser args(argc, argv);
  ApplyCommonBenchFlags(args, "fig5_nn_binary");
  JsonReport json("fig5_nn_binary", args);
  const std::string part = args.GetString("part", "all");
  const int64_t n_r = args.GetInt("nr", 200);
  const size_t d_s = static_cast<size_t>(args.GetInt("ds", 5));
  const int epochs = static_cast<int>(args.GetInt("epochs", 2));

  BenchDir dir;
  storage::BufferPool pool(4096);
  nn::NnOptions opt;
  opt.epochs = epochs;
  opt.temp_dir = dir.str();

  std::printf("== Figure 5: NN over a binary join (nR=%lld, dS=%zu, "
              "epochs=%d, sigmoid) ==\n",
              static_cast<long long>(n_r), d_s, epochs);

  if (part == "rr" || part == "all") {
    for (const size_t d_r : {size_t{5}, size_t{15}}) {
      std::printf("\n-- Fig 5(a): varying rr (dR=%zu, nh=50) --\n", d_r);
      PrintTrioHeader("rr");
      for (const int64_t rr : args.GetIntList("rr", {20, 50, 100, 200})) {
        auto rel = Generate(dir.str(), rr * n_r, n_r, d_s, d_r, &pool);
        opt.hidden = {50};
        EmitTrioRow(&json, "fig5a_rr", std::to_string(rr),
                    RunNnAll(rel, opt, &pool));
      }
    }
  }

  if (part == "dr" || part == "all") {
    for (const int64_t rr : {int64_t{50}, int64_t{200}}) {
      std::printf("\n-- Fig 5(b): varying dR (rr=%lld, nh=50) --\n",
                  static_cast<long long>(rr));
      PrintTrioHeader("dR");
      for (const int64_t d_r : args.GetIntList("dr", {5, 10, 15, 25, 40})) {
        auto rel = Generate(dir.str(), rr * n_r, n_r, d_s,
                            static_cast<size_t>(d_r), &pool);
        opt.hidden = {50};
        EmitTrioRow(&json, "fig5b_dr", std::to_string(d_r),
                    RunNnAll(rel, opt, &pool));
      }
    }
  }

  if (part == "nh" || part == "all") {
    std::printf("\n-- Fig 5(c): varying nh (rr=100, dR=15) --\n");
    PrintTrioHeader("nh");
    auto rel = Generate(dir.str(), 100 * n_r, n_r, d_s, 15, &pool);
    for (const int64_t nh : args.GetIntList("nh", {10, 25, 50, 100})) {
      opt.hidden = {static_cast<size_t>(nh)};
      EmitTrioRow(&json, "fig5c_nh", std::to_string(nh),
                  RunNnAll(rel, opt, &pool));
    }
  }

  if (part == "kernels") {
    // Scalar-vs-simd kernel-plane sweep (the BENCH_nn_kernels.json CI
    // artifact): same M/S/F runs under both --kernels backends, with the
    // per-phase wall timings in the JSON rows. The strip-path speedup
    // lives in the first_layer_fwd and w1_grad phases — the batch matrix
    // products --kernels=simd routes through gemm_strip.
    std::printf("\n-- kernel plane: --kernels=scalar vs simd "
                "(rr=100, dR=15, nh=50) --\n");
    auto rel = Generate(dir.str(), 100 * n_r, n_r, d_s, 15, &pool);
    opt.hidden = {50};
    Trio trios[2];
    for (int simd = 0; simd < 2; ++simd) {
      opt.kernels = simd == 1 ? la::KernelMode::kSimd
                              : la::KernelMode::kScalar;
      PrintTrioHeader(simd == 1 ? "simd" : "scalar");
      trios[simd] = RunNnAll(rel, opt, &pool);
      EmitTrioRow(&json, "fig5_kernels", simd == 1 ? "simd" : "scalar",
                  trios[simd]);
    }
    // Forward/backward strip-path speedup per strategy: the sum of the
    // two gemm-shaped phases under scalar over the same sum under simd.
    const auto phase_sum = [](const core::TrainReport& r) {
      double s = 0.0;
      for (const auto& p : r.phases) {
        if (p.name == "first_layer_fwd" || p.name == "w1_grad") {
          s += p.seconds;
        }
      }
      return s;
    };
    const core::TrainReport* scalar_reports[] = {&trios[0].m, &trios[0].s,
                                                 &trios[0].f};
    const core::TrainReport* simd_reports[] = {&trios[1].m, &trios[1].s,
                                               &trios[1].f};
    std::printf("\nfwd+bwd strip speedup (%s):", la::SimdBackendName());
    for (int i = 0; i < 3; ++i) {
      const double sc = phase_sum(*scalar_reports[i]);
      const double si = phase_sum(*simd_reports[i]);
      std::printf(" %s=%.2fx", scalar_reports[i]->algorithm.c_str(),
                  si > 0 ? sc / si : 0.0);
    }
    std::printf("\n");
  }
  return 0;
}

}  // namespace
}  // namespace factorml::bench

int main(int argc, char** argv) { return factorml::bench::Main(argc, argv); }

// Ablation for the I/O analysis of Sec. V-A: when does recomputing the
// join on the fly (S-GMM / F-GMM) transfer fewer pages than materializing
// T (M-GMM)? Prints the analytical page counts as the join buffer
// (BlockSize) varies, the closed-form crossover, and a measured
// confirmation with the storage engine's physical page counters.

#include <cstdio>

#include "bench_util.h"
#include "common/flags.h"
#include "core/factorml.h"

namespace factorml::bench {
namespace {

int Main(int argc, char** argv) {
  ArgParser args(argc, argv);
  ApplyCommonBenchFlags(args);
  const int iters = static_cast<int>(args.GetInt("iters", 10));

  // A representative shape: wide R relative to S's own columns, so T is
  // much bigger than S + R.
  const uint64_t r_pages = 100, s_pages = 2000, t_pages = 7000;

  std::printf("== Sec. V-A ablation: I/O of M-GMM vs S-GMM under block "
              "nested loops (|R|=%llu, |S|=%llu, |T|=%llu, iters=%d) ==\n\n",
              static_cast<unsigned long long>(r_pages),
              static_cast<unsigned long long>(s_pages),
              static_cast<unsigned long long>(t_pages), iters);
  std::printf("%-12s %14s %14s %8s\n", "BlockPages", "M-GMM pages",
              "S-GMM pages", "winner");
  for (const uint64_t block : {1ULL, 2ULL, 5ULL, 10ULL, 20ULL, 50ULL,
                               100ULL}) {
    const uint64_t m = costmodel::MGmmIoPages(r_pages, s_pages, t_pages,
                                              block, iters);
    const uint64_t s = costmodel::SGmmIoPages(r_pages, s_pages, block,
                                              iters);
    std::printf("%-12llu %14llu %14llu %8s\n",
                static_cast<unsigned long long>(block),
                static_cast<unsigned long long>(m),
                static_cast<unsigned long long>(s), s < m ? "S" : "M");
  }
  const double crossover =
      costmodel::SGmmCrossoverBlockPages(r_pages, s_pages, t_pages, iters);
  std::printf("\nclosed-form crossover: S-GMM wins for BlockSize > %.2f "
              "pages\n\n",
              crossover);

  // Measured confirmation on the physical engine (which probes S through
  // the clustered FK index — the paper notes the proposals apply equally
  // to non-BNL join strategies): F never writes and re-reads the wide T.
  BenchDir dir;
  storage::BufferPool pool(512);
  data::SyntheticSpec spec;
  spec.dir = dir.str();
  spec.s_rows = 40000;
  spec.s_feats = 5;
  spec.attrs = {data::AttributeSpec{200, 15}};
  spec.seed = 1;
  auto rel_or = data::GenerateSynthetic(spec, &pool);
  if (!rel_or.ok()) Die(rel_or.status());
  gmm::GmmOptions opt;
  opt.num_components = 3;
  opt.max_iters = 3;
  opt.temp_dir = dir.str();
  const Trio t = RunGmmAll(rel_or.value(), opt, &pool);
  std::printf("measured physical pages (nS=40000, nR=200, dS=5, dR=15, "
              "3 iters, 512-page pool):\n");
  std::printf("  M-GMM: read=%llu written=%llu\n",
              static_cast<unsigned long long>(t.m.io.pages_read),
              static_cast<unsigned long long>(t.m.io.pages_written));
  std::printf("  S-GMM: read=%llu written=%llu\n",
              static_cast<unsigned long long>(t.s.io.pages_read),
              static_cast<unsigned long long>(t.s.io.pages_written));
  std::printf("  F-GMM: read=%llu written=%llu\n",
              static_cast<unsigned long long>(t.f.io.pages_read),
              static_cast<unsigned long long>(t.f.io.pages_written));
  return 0;
}

}  // namespace
}  // namespace factorml::bench

int main(int argc, char** argv) { return factorml::bench::Main(argc, argv); }

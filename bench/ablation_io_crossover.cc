// Ablation for the I/O analysis of Sec. V-A: when does recomputing the
// join on the fly (S-GMM / F-GMM) transfer fewer pages than materializing
// T (M-GMM)? Prints the analytical page counts as the join buffer
// (BlockSize) varies, the closed-form crossover, and a measured
// confirmation with the storage engine's physical page counters — once
// demand-only and once with the I/O cursor plane's async prefetch
// (--prefetch-depth=N, default 2), the regime the prefetcher targets:
// I/O-bound passes whose stall time it should convert into hits.
// `--json=PATH` records every measured TrainReport (both prefetch
// settings) for the CI perf trajectory.

#include <cstdio>

#include "bench_util.h"
#include "common/flags.h"
#include "core/factorml.h"

namespace factorml::bench {
namespace {

int Main(int argc, char** argv) {
  ArgParser args(argc, argv);
  ApplyCommonBenchFlags(args);
  JsonReport json("io_crossover", args);
  const int iters = static_cast<int>(args.GetInt("iters", 10));

  // A representative shape: wide R relative to S's own columns, so T is
  // much bigger than S + R.
  const uint64_t r_pages = 100, s_pages = 2000, t_pages = 7000;

  std::printf("== Sec. V-A ablation: I/O of M-GMM vs S-GMM under block "
              "nested loops (|R|=%llu, |S|=%llu, |T|=%llu, iters=%d) ==\n\n",
              static_cast<unsigned long long>(r_pages),
              static_cast<unsigned long long>(s_pages),
              static_cast<unsigned long long>(t_pages), iters);
  std::printf("%-12s %14s %14s %8s\n", "BlockPages", "M-GMM pages",
              "S-GMM pages", "winner");
  for (const uint64_t block : {1ULL, 2ULL, 5ULL, 10ULL, 20ULL, 50ULL,
                               100ULL}) {
    const uint64_t m = costmodel::MGmmIoPages(r_pages, s_pages, t_pages,
                                              block, iters);
    const uint64_t s = costmodel::SGmmIoPages(r_pages, s_pages, block,
                                              iters);
    std::printf("%-12llu %14llu %14llu %8s\n",
                static_cast<unsigned long long>(block),
                static_cast<unsigned long long>(m),
                static_cast<unsigned long long>(s), s < m ? "S" : "M");
  }
  const double crossover =
      costmodel::SGmmCrossoverBlockPages(r_pages, s_pages, t_pages, iters);
  std::printf("\nclosed-form crossover: S-GMM wins for BlockSize > %.2f "
              "pages\n\n",
              crossover);

  // Measured confirmation on the physical engine (which probes S through
  // the clustered FK index — the paper notes the proposals apply equally
  // to non-BNL join strategies): F never writes and re-reads the wide T.
  BenchDir dir;
  storage::BufferPool pool(512);
  data::SyntheticSpec spec;
  spec.dir = dir.str();
  spec.s_rows = 40000;
  spec.s_feats = 5;
  spec.attrs = {data::AttributeSpec{200, 15}};
  spec.seed = 1;
  auto rel_or = data::GenerateSynthetic(spec, &pool);
  if (!rel_or.ok()) Die(rel_or.status());
  gmm::GmmOptions opt;
  opt.num_components = 3;
  opt.max_iters = 3;
  opt.temp_dir = dir.str();
  opt.prefetch_depth = args.GetPrefetchDepth(2);
  // Chunked morsels give the prefetcher a deterministic "next scheduled
  // chunk" to run ahead of; results are bit-identical to the demand-only
  // run either way (the Trio self-check would flag any drift).
  opt.morsel_rows = 2048;
  std::printf("measured physical pages (nS=40000, nR=200, dS=5, dR=15, "
              "3 iters, 512-page pool):\n");
  for (const bool prefetch : {false, true}) {
    opt.prefetch = prefetch;
    const Trio t = RunGmmAll(rel_or.value(), opt, &pool);
    const char* tag = prefetch ? "prefetch=on " : "prefetch=off";
    for (const auto* r : {&t.m, &t.s, &t.f}) {
      std::printf("  %s %-6s read=%-6llu written=%-5llu prefetched=%-5llu "
                  "hits=%-5llu stall=%.4fs\n",
                  tag, r->algorithm.c_str(),
                  static_cast<unsigned long long>(r->io.pages_read),
                  static_cast<unsigned long long>(r->io.pages_written),
                  static_cast<unsigned long long>(r->io.prefetch_reads),
                  static_cast<unsigned long long>(r->io.prefetch_hits),
                  static_cast<double>(r->io.stall_micros) * 1e-6);
    }
    json.Add("measured", prefetch ? "prefetch=on" : "prefetch=off", t);
    if (prefetch && t.m.io.prefetch_hits == 0 && t.s.io.prefetch_hits == 0 &&
        t.f.io.prefetch_hits == 0) {
      std::fprintf(stderr, "WARNING: prefetch=on produced no hits on the "
                           "I/O-crossover shape\n");
    }
  }
  return 0;
}

}  // namespace
}  // namespace factorml::bench

int main(int argc, char** argv) { return factorml::bench::Main(argc, argv); }

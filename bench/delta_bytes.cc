// Accumulator-slot memory and ShardDelta wire bytes, measured.
//
// Two claims ride this bench. First, the rid-scoped slot fix: every
// chunk's table-0 accumulator slots are sized to the chunk's contiguous
// rid span, so total slot memory stays flat as the chunk count grows —
// the pre-fix sizing allocated the full attribute domain in every slot,
// O(chunk_count x k x n_R). The bench sweeps --morsel-rows, reads the
// measured `pipeline.slot_bytes` gauge, and prints next to it the cost
// the full-domain sizing would have paid (slot count x the measured
// bytes of one full-domain slot). Second, the sparse v2 ShardDelta
// frames: chunk-scoped slots make most of a dense frame's doubles
// non-zero, but cross-table slots and ragged tails still ship zero runs;
// the sweep compares `pipeline.delta_bytes` under --delta-encoding=dense
// vs sparse at the same shard geometry. Every configuration must
// reproduce the baseline objective and op counts bit for bit — the
// sparse decode and the rid-scoped merge are exactness-preserving, and
// the bench fails loudly if they are not.
//
//   bench_delta_bytes [--threads=2] [--s-rows=60000] [--r-rows=300]
//                     [--iters=3] [--shards=4]
//                     [--morsel-list=4096,1024,256] [--json=PATH]

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench_util.h"
#include "data/synthetic.h"

namespace factorml::bench {
namespace {

bool BitEq(double a, double b) {
  return std::memcmp(&a, &b, sizeof(double)) == 0;
}

/// Named series out of the run's metrics delta; 0.0 when absent.
double Metric(const core::TrainReport& r, const std::string& name) {
  for (const auto& s : r.metrics) {
    if (s.name == name) return s.value;
  }
  return 0.0;
}

int Main(int argc, char** argv) {
  ArgParser args(argc, argv);
  ApplyCommonBenchFlags(args);
  const int threads = args.GetThreads(2);
  const int64_t s_rows = args.GetInt("s-rows", 60000);
  const int64_t r_rows = args.GetInt("r-rows", 300);
  const int iters = static_cast<int>(args.GetInt("iters", 3));
  const int shards = static_cast<int>(args.GetInt("shards", 4));
  const std::vector<int64_t> morsel_list =
      args.GetIntList("morsel-list", {4096, 1024, 256});
  JsonReport json("delta_bytes", args);

  BenchDir dir;
  data::SyntheticSpec spec;
  spec.dir = dir.str();
  spec.s_rows = s_rows;
  spec.s_feats = 4;
  spec.attrs = {data::AttributeSpec{r_rows, 4}};
  storage::BufferPool pool(4096);
  auto rel_or = data::GenerateSynthetic(spec, &pool);
  if (!rel_or.ok()) Die(rel_or.status());
  const auto rel = std::move(rel_or).value();

  gmm::GmmOptions opt;
  opt.num_components = 3;
  opt.max_iters = iters;
  opt.temp_dir = dir.str();

  // One full-domain slot: serial, unchunked — its slot bytes are what
  // EVERY slot used to cost before the rid-scoped fix.
  opt.threads = 1;
  pool.Clear();
  core::TrainReport base;
  auto params =
      core::TrainGmm(rel, opt, core::Algorithm::kFactorized, &pool, &base);
  if (!params.ok()) Die(params.status());
  const double full_domain_slot_bytes = Metric(base, "pipeline.slot_bytes");
  json.Add("f-gmm", "serial_baseline", base);
  std::printf(
      "F-GMM on %lld fact rows over %lld FK1 runs, iters=%d; one "
      "full-domain slot costs %.0f bytes\n",
      static_cast<long long>(s_rows), static_cast<long long>(r_rows), iters,
      full_domain_slot_bytes);

  std::printf("%-22s %8s %14s %16s %14s\n", "config", "chunks",
              "slot_bytes", "legacy_bytes", "delta_bytes");

  opt.threads = threads;
  for (const int64_t morsel_rows : morsel_list) {
    opt.morsel_rows = morsel_rows;
    opt.shards = 1;
    opt.delta_encoding = "dense";
    pool.Clear();
    core::TrainReport r;
    params = core::TrainGmm(rel, opt, core::Algorithm::kFactorized, &pool, &r);
    if (!params.ok()) Die(params.status());
    const int64_t chunks = (s_rows + morsel_rows - 1) / morsel_rows;
    std::printf("%-22s %8lld %14.0f %16.0f %14s\n",
                ("morsel=" + std::to_string(morsel_rows)).c_str(),
                static_cast<long long>(chunks),
                Metric(r, "pipeline.slot_bytes"),
                static_cast<double>(chunks) * full_domain_slot_bytes, "-");
    json.Add("f-gmm", "morsel_" + std::to_string(morsel_rows), r);

    // Sharded runs at the same chunk geometry, both wire encodings: the
    // sparse frame may only shrink the wire, never change the decode.
    // Parity is per morsel size — the chunk-ordered reduction is a
    // function of the chunk geometry, not of shards or encoding.
    double dense_wire = 0.0;
    for (const char* enc : {"dense", "sparse"}) {
      opt.shards = shards;
      opt.delta_encoding = enc;
      pool.Clear();
      core::TrainReport rs;
      params =
          core::TrainGmm(rel, opt, core::Algorithm::kFactorized, &pool, &rs);
      if (!params.ok()) Die(params.status());
      const double wire = Metric(rs, "pipeline.delta_bytes");
      if (std::strcmp(enc, "dense") == 0) dense_wire = wire;
      std::printf("%-22s %8lld %14.0f %16s %14.0f\n",
                  ("  shards=" + std::to_string(shards) + " " + enc).c_str(),
                  static_cast<long long>(chunks),
                  Metric(rs, "pipeline.slot_bytes"), "-", wire);
      json.Add("f-gmm", "morsel_" + std::to_string(morsel_rows) + "_shards_" +
                            std::to_string(shards) + "_" + enc,
               rs);
      if (!BitEq(rs.final_objective, r.final_objective) ||
          rs.ops.mults != r.ops.mults || rs.ops.adds != r.ops.adds ||
          rs.ops.subs != r.ops.subs || rs.ops.exps != r.ops.exps) {
        std::fprintf(stderr,
                     "PARITY VIOLATION: shards=%d %s at morsel=%lld "
                     "(objective %a vs %a)\n",
                     shards, enc, static_cast<long long>(morsel_rows),
                     rs.final_objective, r.final_objective);
        return 1;
      }
      if (std::strcmp(enc, "sparse") == 0 && wire > dense_wire) {
        std::fprintf(stderr,
                     "sparse frames larger than dense (%.0f > %.0f) at "
                     "morsel=%lld — RLE overhead exceeded its savings\n",
                     wire, dense_wire, static_cast<long long>(morsel_rows));
        return 1;
      }
    }
  }
  std::printf(
      "every sharded/sparse run bit-identical to its shards=1 dense "
      "baseline (objective + op counts); sparse frames never exceeded "
      "dense\n");
  return 0;
}

}  // namespace
}  // namespace factorml::bench

int main(int argc, char** argv) { return factorml::bench::Main(argc, argv); }

// Rid-range shard scaling with the bit-identical shard-merge contract.
//
// The shard plane splits every full pass into contiguous chunk spans, runs
// one scan per shard (own IoStats window and busy time), round-trips each
// shard's accumulator slots through serialized ShardDelta bytes — the
// seam a distributed backend would put on the wire — and merges the
// deltas in shard-id order. Because slot = global chunk id and the merge
// replays the unsharded chunk-order reduction, objectives, params and op
// counts are bit-identical across shard counts, and with steal/prefetch
// off the in-process backend's time-shared worker pools make total page
// I/O identical too. This bench sweeps the shard count, reports what each
// shard paid (scan wall time, physical reads, delta wire bytes are fixed
// by the model) and fails on any parity violation — the self-check the
// CI trajectory records as BENCH_shard_scaling.json.
//
//   bench_shard_scaling [--threads=4] [--s-rows=60000] [--r-rows=300]
//                       [--morsel-rows=1024] [--shards-list=1,2,4]
//                       [--iters=3] [--algo=m|f|all] [--json=PATH]

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench_util.h"
#include "data/synthetic.h"

namespace factorml::bench {
namespace {

/// Bit-pattern equality: the contract is "identical bits", which a plain
/// != on doubles cannot check when a run legitimately diverges to NaN
/// (NaN != NaN would report a spurious violation on matching runs).
bool BitEq(double a, double b) {
  return std::memcmp(&a, &b, sizeof(double)) == 0;
}

int Main(int argc, char** argv) {
  ArgParser args(argc, argv);
  ApplyCommonBenchFlags(args);
  const int threads = args.GetThreads(4);
  const int64_t s_rows = args.GetInt("s-rows", 60000);
  const int64_t r_rows = args.GetInt("r-rows", 300);
  const int64_t morsel_rows = args.GetMorselRows(1024);
  const int iters = static_cast<int>(args.GetInt("iters", 3));
  const std::vector<int64_t> shard_counts =
      args.GetIntList("shards-list", {1, 2, 4});
  JsonReport json("shard_scaling", args);

  BenchDir dir;
  data::SyntheticSpec spec;
  spec.dir = dir.str();
  spec.s_rows = s_rows;
  spec.s_feats = 4;
  spec.attrs = {data::AttributeSpec{r_rows, 4}};
  storage::BufferPool pool(4096);
  auto rel_or = data::GenerateSynthetic(spec, &pool);
  if (!rel_or.ok()) Die(rel_or.status());
  const auto rel = std::move(rel_or).value();

  std::vector<core::Algorithm> algos;
  const std::string algo_spec = args.GetString("algo", "all");
  if (algo_spec == "m" || algo_spec == "all") {
    algos.push_back(core::Algorithm::kMaterialized);
  }
  if (algo_spec == "f" || algo_spec == "all") {
    algos.push_back(core::Algorithm::kFactorized);
  }
  if (algos.empty()) {
    std::fprintf(stderr, "unknown --algo=%s (valid: m, f, all)\n",
                 algo_spec.c_str());
    return 2;
  }

  std::printf(
      "GMM on %lld fact rows over %lld FK1 runs, threads=%d, "
      "morsel-rows=%lld (steal/prefetch off: page I/O is part of the "
      "parity contract)\n",
      static_cast<long long>(s_rows), static_cast<long long>(r_rows), threads,
      static_cast<long long>(morsel_rows));
  std::printf("%-8s %-8s %10s %10s %12s %14s %14s\n", "algo", "shards",
              "wall(s)", "scan_max", "pages_read", "shard_reads",
              "scan_spread");

  gmm::GmmOptions opt;
  opt.num_components = 3;
  opt.max_iters = iters;
  opt.temp_dir = dir.str();
  opt.threads = threads;
  opt.morsel_rows = morsel_rows;

  for (const auto algo : algos) {
    core::TrainReport base;
    for (const int64_t shards : shard_counts) {
      opt.shards = static_cast<int>(shards);
      pool.Clear();
      core::TrainReport r;
      auto params = core::TrainGmm(rel, opt, algo, &pool, &r);
      if (!params.ok()) Die(params.status());

      double scan_min = 0.0, scan_max = 0.0;
      std::string shard_reads = "-";
      if (!r.shard_stats.empty()) {
        scan_min = scan_max = r.shard_stats[0].scan_seconds;
        shard_reads.clear();
        for (size_t k = 0; k < r.shard_stats.size(); ++k) {
          const auto& stat = r.shard_stats[k];
          scan_min = std::min(scan_min, stat.scan_seconds);
          scan_max = std::max(scan_max, stat.scan_seconds);
          shard_reads += (k > 0 ? "/" : "") +
                         std::to_string(stat.io.pages_read);
        }
      }
      const double spread =
          scan_max > 0.0 ? 1.0 - scan_min / scan_max : 0.0;
      std::printf("%-8s %-8lld %10.3f %10.4f %12llu %14s %13.1f%%\n",
                  core::AlgorithmName(algo),
                  static_cast<long long>(shards), r.wall_seconds, scan_max,
                  static_cast<unsigned long long>(r.io.pages_read),
                  shard_reads.c_str(), 100.0 * spread);
      json.Add(core::AlgorithmName(algo),
               "shards_" + std::to_string(shards), r);

      // The contract, enforced where the trajectory is recorded: every
      // shard count reproduces the shards=1 run bit for bit — objective,
      // op counts, and (steal/prefetch off) the whole page-I/O split.
      if (shards == shard_counts.front()) {
        base = r;
        continue;
      }
      if (!BitEq(r.final_objective, base.final_objective) ||
          r.ops.mults != base.ops.mults || r.ops.adds != base.ops.adds ||
          r.ops.subs != base.ops.subs || r.ops.exps != base.ops.exps ||
          r.io.pages_read != base.io.pages_read ||
          r.io.pool_hits != base.io.pool_hits ||
          r.io.pool_misses != base.io.pool_misses) {
        std::fprintf(stderr,
                     "PARITY VIOLATION on %s: shards=%lld differs from "
                     "shards=%lld (objective %a vs %a, pages_read %llu vs "
                     "%llu)\n",
                     core::AlgorithmName(algo),
                     static_cast<long long>(shards),
                     static_cast<long long>(shard_counts.front()),
                     r.final_objective, base.final_objective,
                     static_cast<unsigned long long>(r.io.pages_read),
                     static_cast<unsigned long long>(base.io.pages_read));
        return 1;
      }
    }
  }
  std::printf(
      "shard sweep verified bit-identical (objective + op counts + page "
      "I/O) against shards=%lld on every algorithm\n",
      static_cast<long long>(shard_counts.front()));
  std::printf(
      "note: shards time-share the compute workers in-process, so the "
      "win here is per-shard accounting and the verified merge seam; "
      "wall-clock scale-out needs the RPC backend (one machine per "
      "shard)\n");
  return 0;
}

}  // namespace
}  // namespace factorml::bench

int main(int argc, char** argv) { return factorml::bench::Main(argc, argv); }
